"""Differential tests: the proximity engine must be *bit-identical* to
the brute-force ``core.service`` oracle.

The engine (grid masks, batch scores, cached tree evaluation) is a pure
accelerator — not an approximation — so every comparison here is ``==``
on floats and ``array_equal`` on masks, never ``approx``.  Hypothesis
drives adversarial inputs: stop-dense facilities, serving distances
commensurate with the snapped coordinate grid (distance-exactly-psi
ties), radii from zero to world-spanning.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro import (
    BatchQueryEngine,
    CoverageCache,
    GriddedStopSet,
    ProximityBackend,
    ServiceModel,
    ServiceSpec,
    StopGrid,
    StopSet,
    TQTree,
    TQTreeConfig,
    brute_force_matches,
    brute_force_service,
    evaluate_service,
    maxkcov_tq,
    top_k_facilities,
)

from .strategies import (
    WORLD,
    dense_facilities,
    engine_psis,
    facility_sets,
    trajectory_sets,
)

ALL_MODELS = (ServiceModel.ENDPOINT, ServiceModel.COUNT, ServiceModel.LENGTH)
ALL_BACKENDS = (
    ProximityBackend.DENSE,
    ProximityBackend.GRID,
    ProximityBackend.AUTO,
)


class TestGridMaskOracle:
    """StopGrid / GriddedStopSet masks vs the dense StopSet broadcast."""

    @settings(max_examples=50, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=12, min_points=1, max_points=6),
        dense_facilities(min_stops=16, max_stops=96),
        engine_psis(),
    )
    def test_grid_mask_bit_identical(self, users, facility, psi):
        dense = StopSet.of_facility(facility)
        grid = StopGrid(facility.stop_coords, psi)
        gridded = GriddedStopSet(facility.stop_coords, psi)
        for u in users:
            expected = dense.covered_mask(u.coords, psi)
            assert np.array_equal(expected, grid.covered_mask(u.coords, psi))
            assert np.array_equal(expected, gridded.covered_mask(u.coords, psi))

    @settings(max_examples=50, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=8, min_points=1, max_points=4),
        dense_facilities(min_stops=16, max_stops=64),
        engine_psis(),
    )
    def test_covers_point_bit_identical(self, users, facility, psi):
        dense = StopSet.of_facility(facility)
        grid = StopGrid(facility.stop_coords, psi)
        gridded = GriddedStopSet(facility.stop_coords, psi)
        for u in users:
            for p in u.points:
                expected = dense.covers_point(p, psi)
                assert grid.covers_point(p, psi) == expected
                assert gridded.covers_point(p, psi) == expected

    @settings(max_examples=30, deadline=None)
    @given(dense_facilities(min_stops=16, max_stops=96), engine_psis())
    def test_restriction_preserves_grid_and_results(self, facility, psi):
        dense = StopSet.of_facility(facility)
        gridded = GriddedStopSet(facility.stop_coords, psi)
        box = WORLD.quadrant(2).expanded(psi)
        d_sub = dense.restricted_to(box)
        g_sub = gridded.restricted_to(box)
        assert isinstance(g_sub, GriddedStopSet)
        assert np.array_equal(d_sub.coords, g_sub.coords)
        probe = np.array([[p, p] for p in np.linspace(0.0, 1024.0, 37)])
        assert np.array_equal(
            d_sub.covered_mask(probe, psi), g_sub.covered_mask(probe, psi)
        )


class TestBatchEngineOracle:
    """BatchQueryEngine scores vs ``brute_force_service`` — all three
    service models, normalised and raw, every backend."""

    @settings(max_examples=40, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=16, min_points=1, max_points=6),
        facility_sets(min_size=1, max_size=3, min_stops=1, max_stops=24),
        engine_psis(),
    )
    def test_scores_bit_identical_small_facilities(self, users, facs, psi):
        for backend in ALL_BACKENDS:
            engine = BatchQueryEngine(users, backend=backend)
            for model in ALL_MODELS:
                for normalize in (True, False):
                    spec = ServiceSpec(model, psi=psi, normalize=normalize)
                    for f in facs:
                        assert engine.query(f, spec) == brute_force_service(
                            users, f, spec
                        ), (backend, model, normalize)

    @settings(max_examples=25, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=12, min_points=2, max_points=5),
        dense_facilities(min_stops=48, max_stops=120),
        engine_psis(),
    )
    def test_scores_bit_identical_dense_facilities(self, users, facility, psi):
        engine = BatchQueryEngine(users, backend=ProximityBackend.GRID)
        for model in ALL_MODELS:
            spec = ServiceSpec(model, psi=psi)
            assert engine.query(facility, spec) == brute_force_service(
                users, facility, spec
            ), (model, psi)

    @settings(max_examples=25, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=10, min_points=1, max_points=5),
        dense_facilities(min_stops=16, max_stops=64),
        engine_psis(),
    )
    def test_matches_equal_brute_force(self, users, facility, psi):
        engine = BatchQueryEngine(users, backend=ProximityBackend.GRID)
        assert engine.matches(facility, psi) == brute_force_matches(
            users, facility, psi
        )

    @settings(max_examples=20, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=10, min_points=2, max_points=4),
        facility_sets(min_size=2, max_size=4, min_stops=2, max_stops=32),
        engine_psis(),
    )
    def test_batched_run_equals_sequential_oracle(self, users, facs, psi):
        """One run() over a request grid (facility x model) matches the
        oracle per request, and the shared-mask path changes nothing."""
        engine = BatchQueryEngine(users, backend=ProximityBackend.AUTO)
        requests = [
            (f, ServiceSpec(model, psi=psi))
            for f in facs
            for model in ALL_MODELS
        ]
        result = engine.run(requests)
        expected = tuple(
            brute_force_service(users, f, spec) for f, spec in requests
        )
        assert result.scores == expected
        # the three models of one facility share one mask
        assert result.stats.cache_hits >= 2 * len(facs)


class TestTreePathOracle:
    """evaluate_service / top-k / MaxkCovRST with backend+cache vs the
    plain dense tree path (itself oracle-tested elsewhere)."""

    @settings(max_examples=20, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=16, min_points=2, max_points=2),
        dense_facilities(min_stops=24, max_stops=64),
        engine_psis(),
    )
    def test_evaluate_service_backend_identical(self, users, facility, psi):
        cache = CoverageCache()
        for use_zorder in (True, False):
            tree = TQTree.build(
                users, TQTreeConfig(beta=3, use_zorder=use_zorder), space=WORLD
            )
            for model in ALL_MODELS:
                spec = ServiceSpec(model, psi=psi, normalize=False)
                plain = evaluate_service(tree, facility, spec)
                for backend in ALL_BACKENDS:
                    got = evaluate_service(
                        tree, facility, spec, backend=backend, cache=cache
                    )
                    assert got == plain, (use_zorder, model, backend)
                # cached replay must be identical too
                again = evaluate_service(
                    tree, facility, spec,
                    backend=ProximityBackend.GRID, cache=cache,
                )
                assert again == plain

    def test_topk_and_maxkcov_backend_identical(self, taxi_users, facilities):
        tree = TQTree.build(taxi_users, TQTreeConfig(beta=16))
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=400.0)
        plain_topk = top_k_facilities(tree, facilities, 4, spec)
        plain_cov = maxkcov_tq(tree, facilities, 3, spec)
        cache = CoverageCache()
        fast_topk = top_k_facilities(
            tree, facilities, 4, spec,
            backend=ProximityBackend.GRID, cache=cache,
        )
        fast_cov = maxkcov_tq(
            tree, facilities, 3, spec,
            backend=ProximityBackend.GRID, cache=cache,
        )
        assert fast_topk.ranking == plain_topk.ranking
        assert fast_cov.facility_ids() == plain_cov.facility_ids()
        assert fast_cov.combined_service == plain_cov.combined_service
        assert fast_cov.users_fully_served == plain_cov.users_fully_served
        assert cache.hits > 0

    def test_cache_never_aliases_facilities_sharing_an_id(self, taxi_users, facilities):
        """Two distinct facilities with the same facility_id must each
        get their own (correct) answer from a shared cache — the stored
        component coordinates disambiguate them."""
        from repro import FacilityRoute

        tree = TQTree.build(taxi_users, TQTreeConfig(beta=16))
        spec = ServiceSpec(ServiceModel.COUNT, psi=400.0)
        f_a = FacilityRoute(7, facilities[0].stops)
        f_b = FacilityRoute(7, facilities[1].stops)
        cache = CoverageCache()
        for f in (f_a, f_b, f_a, f_b):
            got = evaluate_service(
                tree, f, spec, backend=ProximityBackend.AUTO, cache=cache
            )
            assert got == brute_force_service(taxi_users, f, spec)

    def test_shared_cache_across_engines_with_different_users(
        self, taxi_users, checkin_users, facilities
    ):
        """One CoverageCache serving two engines over different user
        sets must never hand one engine the other's mask — even when
        both queries name the very same StopSet object."""
        shared = CoverageCache()
        spec = ServiceSpec(ServiceModel.COUNT, psi=400.0)
        stops = StopSet.of_facility(facilities[0])
        e1 = BatchQueryEngine(
            taxi_users, backend=ProximityBackend.DENSE, cache=shared
        )
        e2 = BatchQueryEngine(
            checkin_users, backend=ProximityBackend.DENSE, cache=shared
        )
        for _ in range(2):  # interleave to hit both cache slots
            assert e1.query(stops, spec) == brute_force_service(
                taxi_users, facilities[0], spec
            )
            assert e2.query(stops, spec) == brute_force_service(
                checkin_users, facilities[0], spec
            )

    def test_match_sets_reused_across_maxkcov_calls(self, taxi_users, facilities):
        """Repeated maxkcov_tq calls through one cache reuse match sets:
        independently created tq_match_fn closures share semantic keys."""
        tree = TQTree.build(taxi_users, TQTreeConfig(beta=16))
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=400.0)
        cache = CoverageCache()
        first = maxkcov_tq(
            tree, facilities, 3, spec,
            backend=ProximityBackend.GRID, cache=cache,
        )
        hits_before = cache.hits
        second = maxkcov_tq(
            tree, facilities, 3, spec,
            backend=ProximityBackend.GRID, cache=cache,
        )
        assert second.facility_ids() == first.facility_ids()
        assert second.combined_service == first.combined_service
        # the second call's match collection is served from the cache
        assert cache.hits >= hits_before + len(first.selection)

    def test_cache_survives_repeated_queries(self, taxi_users, facilities):
        tree = TQTree.build(taxi_users, TQTreeConfig(beta=16))
        spec = ServiceSpec(ServiceModel.COUNT, psi=400.0)
        cache = CoverageCache()
        first = [
            evaluate_service(
                tree, f, spec, backend=ProximityBackend.AUTO, cache=cache
            )
            for f in facilities
        ]
        hits_after_first = cache.hits
        second = [
            evaluate_service(
                tree, f, spec, backend=ProximityBackend.AUTO, cache=cache
            )
            for f in facilities
        ]
        assert first == second
        assert cache.hits > hits_after_first


@pytest.mark.engine_smoke
def test_engine_smoke(taxi_users, facilities, endpoint_spec):
    """Fast engine-vs-oracle smoke check (runs in the default suite)."""
    engine = BatchQueryEngine(taxi_users, backend=ProximityBackend.GRID)
    for f in facilities[:4]:
        assert engine.query(f, endpoint_spec) == brute_force_service(
            taxi_users, f, endpoint_spec
        )
