"""Differential suite for cross-request batched execution (ISSUE 8).

The contract: ``batch_window`` is a pure scheduling knob — it never
changes an answer.  For seeded random mixes of evaluate / kmaxrrst /
maxkcov requests, every ``QueryResult.value`` under ``batch_window``
{small, large} must be ``==`` to the ``batch_window=0`` run (which
``tests/test_query_service.py`` in turn holds to the synchronous
cores), under every execution policy.  Requests the eligibility gate
excludes from batching (LENGTH, ``collect_matches``,
normalize-by-non-power-of-two COUNT, and every non-evaluate type) keep
*bitwise-identical per-request stats* too whenever their probe units
are disjoint from every batch-eligible request's — they take the
unbatched path unchanged.  (A shared unit is the one legitimate
difference: at ``batch_window=0`` the ineligible request rides the
eligible one's tree-walk mask, while under batching that mask lives in
the engine instead, so the rider probes fresh — value unchanged.)  Batched members instead satisfy the
exact-split contract: their per-request :class:`QueryStats` summed
over the wave equal one sequential :class:`BatchQueryEngine` pass over
the same requests, bit for bit, and the runtime's grand total grows by
exactly that sum.  On top of parity: mid-batch cancellation stays
local to the cancelled member, a foreign request interleaved on a
shared probe unit closes the group instead of deadlocking it, and the
``probe_units_batched`` / ``probe_units_coalesced`` counters stay
disjoint (coalesced remains identical-unit reuse only).
"""

from __future__ import annotations

import asyncio
import dataclasses
import random

import pytest

from repro import (
    BatchQueryEngine,
    EvaluateRequest,
    IndexVariant,
    KMaxRRSTRequest,
    MaxKCovRequest,
    ProximityBackend,
    QueryRuntime,
    QueryService,
    QueryStats,
    RuntimeConfig,
    ServiceConfig,
    ServiceModel,
    ServiceSpec,
    ServiceStats,
    TQTree,
    TQTreeConfig,
    evaluate_service,
)
from repro.core.errors import QueryError
from repro.service.http import wire

PSI = 400.0
ENDPOINT = ServiceSpec(ServiceModel.ENDPOINT, psi=PSI)
COUNT_RAW = ServiceSpec(ServiceModel.COUNT, psi=PSI, normalize=False)
COUNT_NORM = ServiceSpec(ServiceModel.COUNT, psi=PSI)
LENGTH = ServiceSpec(ServiceModel.LENGTH, psi=PSI)

POLICIES = ("serial", "threads", "processes")

#: The three window settings the differential matrix sweeps: off (the
#: baseline schedule), small (groups may fragment mid-wave), large
#: (whole waves merge into one group).  Values must stay well under the
#: suite's patience but above the loop's timer resolution.
WINDOWS = (0.0, 0.002, 0.05)


def _config(policy: str) -> RuntimeConfig:
    return RuntimeConfig(
        backend=ProximityBackend.GRID, policy=policy, shards=2, max_workers=2
    )


@pytest.fixture(scope="module")
def tree(taxi_users):
    return TQTree.build(taxi_users, TQTreeConfig(beta=16))


@pytest.fixture(scope="module")
def checkin_tree(checkin_users):
    # 3..8-point trajectories: guaranteed to contain a non-power-of-two
    # point count, which makes normalized COUNT batching-ineligible.
    # SEGMENTED indexing so COUNT is a valid spec on >2-point users.
    return TQTree.build(
        checkin_users,
        TQTreeConfig(beta=16, variant=IndexVariant.SEGMENTED),
    )


def _all_pow2(tree) -> bool:
    return all(
        t.n_points > 0 and (t.n_points & (t.n_points - 1)) == 0
        for t in tree.trajectories()
    )


def _batch_eligible(req, all_pow2: bool) -> bool:
    """Mirror of the service's eligibility gate, kept here so the test
    fails loudly if the gate widens without the suite noticing."""
    if not isinstance(req, EvaluateRequest) or req.collect_matches:
        return False
    if req.spec.model is ServiceModel.LENGTH:
        return False
    if (
        req.spec.model is ServiceModel.COUNT
        and req.spec.normalize
        and not all_pow2
    ):
        return False
    return True


def _fuzz_requests(tree, facilities, seed: int):
    """A seeded mix of all three request types with deliberate
    duplicate facilities, so waves contain charged members, riders,
    ineligible fallbacks, and group-closing foreign requests."""
    rng = random.Random(seed)
    specs = (ENDPOINT, COUNT_RAW, COUNT_NORM, LENGTH)
    requests = []
    for _ in range(14):
        roll = rng.random()
        if roll < 0.75:
            requests.append(
                EvaluateRequest(
                    tree,
                    facilities[rng.randrange(len(facilities))],
                    specs[rng.randrange(len(specs))],
                    collect_matches=rng.random() < 0.15,
                )
            )
        elif roll < 0.9:
            requests.append(
                KMaxRRSTRequest(tree, tuple(facilities[:6]), 3, ENDPOINT)
            )
        else:
            requests.append(
                MaxKCovRequest(tree, tuple(facilities[:6]), 2, ENDPOINT)
            )
    return requests


def _value_key(req, result):
    """A comparable projection of a result's answer (bitwise: no
    tolerances anywhere)."""
    if isinstance(req, EvaluateRequest):
        return (result.value, result.matches)
    if isinstance(req, KMaxRRSTRequest):
        return result.value.ranking
    return (
        result.value.facility_ids(),
        result.value.combined_service,
        result.value.users_fully_served,
        result.value.step_gains,
    )


def _drive(requests, policy: str, batch_window: float):
    async def main():
        with QueryRuntime(_config(policy)) as runtime:
            async with QueryService(
                runtime,
                ServiceConfig(max_in_flight=4, batch_window=batch_window),
            ) as service:
                results = await service.run(requests)
                stats = service.stats
            total = dataclasses.replace(runtime.stats)
        return results, stats, total

    return asyncio.run(main())


def _assert_outcomes_sum(stats: ServiceStats) -> None:
    assert (
        stats.requests_completed
        + stats.requests_failed
        + stats.requests_cancelled
        == stats.requests_submitted
    )


class TestBatchingDifferential:
    """batch_window {small, large} × policy × seed: values bitwise
    identical to batch_window=0, ineligible requests' stats bitwise
    identical too."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("seed", (7, 19))
    def test_fuzz_values_identical_across_windows(
        self, policy, seed, tree, facilities
    ):
        requests = _fuzz_requests(tree, facilities, seed)
        all_pow2 = _all_pow2(tree)
        baseline, base_stats, _ = _drive(requests, policy, batch_window=0.0)
        assert base_stats.probe_units_batched == 0
        _assert_outcomes_sum(base_stats)
        base_keys = [
            _value_key(req, res) for req, res in zip(requests, baseline)
        ]
        # probe units are keyed by (facility, psi); psi is uniform here,
        # so unit overlap with the batched tier reduces to facility
        # identity against any eligible evaluate's facility
        batched_facilities = {
            id(req.facility)
            for req in requests
            if _batch_eligible(req, all_pow2)
        }

        def _touches_batched(req) -> bool:
            if isinstance(req, EvaluateRequest):
                return id(req.facility) in batched_facilities
            return any(id(f) in batched_facilities for f in req.facilities)

        for window in WINDOWS[1:]:
            results, stats, _ = _drive(requests, policy, batch_window=window)
            for req, res, base_res, key in zip(
                requests, results, baseline, base_keys
            ):
                assert _value_key(req, res) == key, (
                    f"value diverged under batch_window={window}"
                )
                if not _batch_eligible(req, all_pow2) and not _touches_batched(
                    req
                ):
                    # unbatched path with no shared mask to lose: bitwise
                    assert res.stats == base_res.stats
            _assert_outcomes_sum(stats)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_batched_wave_stats_split_exactly(self, policy, tree, facilities):
        """Distinct eligible evaluates under a large window: every unit
        lands in probe_units_batched, none in probe_units_coalesced,
        and the per-request stats merge bitwise to one sequential
        BatchQueryEngine pass — with the runtime total growing by
        exactly that sum."""
        requests = [
            EvaluateRequest(
                tree, facility, ENDPOINT if i % 2 == 0 else COUNT_RAW
            )
            for i, facility in enumerate(facilities[:8])
        ]
        plain = [
            evaluate_service(req.tree, req.facility, req.spec)
            for req in requests
        ]
        results, stats, total = _drive(requests, policy, batch_window=0.05)
        assert [r.value for r in results] == plain
        assert stats.probe_units_batched == len(requests)
        assert stats.probe_units_coalesced == 0
        _assert_outcomes_sum(stats)

        with QueryRuntime(_config("serial")) as runtime:
            engine = BatchQueryEngine(
                tuple(tree.trajectories()), runtime=runtime
            )
            sequential_pass = QueryStats()
            for req in requests:
                engine.query(req.facility, req.spec, sequential_pass)
        merged = QueryStats()
        for res in results:
            merged.merge(res.stats)
        assert merged == sequential_pass
        assert total == merged

    def test_duplicate_evaluates_ride_the_engine_cache(
        self, tree, facilities
    ):
        """Duplicates inside a batch group become engine cache riders —
        counted in probe_units_batched, never in probe_units_coalesced
        (which stays identical-unit reuse on the unbatched path)."""
        req = EvaluateRequest(tree, facilities[0], ENDPOINT)
        requests = [req, req, req]
        results, stats, _ = _drive(requests, "serial", batch_window=0.05)
        assert len({r.value for r in results}) == 1
        assert stats.probe_units_batched == 3
        assert stats.probe_units_coalesced == 0
        # riders did no fresh geometry: the shared mask served them
        rider_hits = sum(r.stats.cache_hits for r in results)
        assert rider_hits >= 2

        # same wave, window off: the PR 4 coalescer handles it instead
        _, stats0, _ = _drive(requests, "serial", batch_window=0.0)
        assert stats0.probe_units_batched == 0
        assert stats0.probe_units_coalesced == 2


class TestEligibilityGate:
    def test_ineligible_shapes_fall_back_unbatched(self, tree, facilities):
        """LENGTH and collect_matches never batch: the window runs, the
        counter stays zero, answers and stats match window=0 bitwise."""
        requests = [
            EvaluateRequest(tree, facilities[0], LENGTH),
            EvaluateRequest(tree, facilities[1], LENGTH),
            EvaluateRequest(
                tree, facilities[2], ENDPOINT, collect_matches=True
            ),
        ]
        baseline, _, _ = _drive(requests, "serial", batch_window=0.0)
        results, stats, _ = _drive(requests, "serial", batch_window=0.05)
        assert stats.probe_units_batched == 0
        for res, base in zip(results, baseline):
            assert res.value == base.value
            assert res.matches == base.matches
            assert res.stats == base.stats

    def test_normalized_count_requires_dyadic_weights(
        self, checkin_tree, facilities
    ):
        """normalize=True COUNT only batches when every trajectory's
        point count is a power of two (weights exactly representable);
        the check-in tree is built to violate that."""
        assert not _all_pow2(checkin_tree)
        requests = [
            EvaluateRequest(checkin_tree, facility, COUNT_NORM)
            for facility in facilities[:4]
        ]
        baseline, _, _ = _drive(requests, "serial", batch_window=0.0)
        results, stats, _ = _drive(requests, "serial", batch_window=0.05)
        assert stats.probe_units_batched == 0
        for res, base in zip(results, baseline):
            assert res.value == base.value
            assert res.stats == base.stats
        # the raw (normalize=False) spec on the same tree does batch
        raw = [
            EvaluateRequest(checkin_tree, facility, COUNT_RAW)
            for facility in facilities[:4]
        ]
        base_raw, _, _ = _drive(raw, "serial", batch_window=0.0)
        res_raw, stats_raw, _ = _drive(raw, "serial", batch_window=0.05)
        assert stats_raw.probe_units_batched == len(raw)
        assert [r.value for r in res_raw] == [r.value for r in base_raw]


class TestCancellationAndInterleaving:
    def test_mid_batch_cancellation_stays_local(self, tree, facilities):
        """Cancelling one member while the window is open abandons only
        that member: siblings complete with correct values, the group
        still fires, and the outcome counters stay consistent."""
        requests = [
            EvaluateRequest(tree, facility, ENDPOINT)
            for facility in facilities[:5]
        ]
        plain = [
            evaluate_service(req.tree, req.facility, req.spec)
            for req in requests
        ]

        async def main():
            with QueryRuntime(_config("serial")) as runtime:
                async with QueryService(
                    runtime, ServiceConfig(batch_window=0.2)
                ) as service:
                    tasks = []
                    for req in requests:
                        tasks.append(
                            asyncio.ensure_future(service.submit(req))
                        )
                        await asyncio.sleep(0)  # register in order
                    await asyncio.sleep(0.02)  # inside the open window
                    tasks[2].cancel()
                    outcomes = await asyncio.wait_for(
                        asyncio.gather(*tasks, return_exceptions=True),
                        timeout=30,
                    )
                    return outcomes, service.stats

        outcomes, stats = asyncio.run(main())
        assert isinstance(outcomes[2], asyncio.CancelledError)
        for i, (outcome, expected) in enumerate(zip(outcomes, plain)):
            if i == 2:
                continue
            assert outcome.value == expected
        assert stats.requests_cancelled == 1
        assert stats.requests_completed == len(requests) - 1
        # the abandoned member's unit is not claimed as batched work
        assert stats.probe_units_batched == len(requests) - 1
        _assert_outcomes_sum(stats)

    def test_foreign_interleave_closes_group_without_deadlock(
        self, tree, facilities
    ):
        """A non-batchable request interleaved on a shared probe unit
        after the window opened must close the group (it cannot join,
        and waiting on it would cycle through the barrier).  The wave
        still completes with correct answers."""
        a = EvaluateRequest(tree, facilities[0], ENDPOINT)
        x = KMaxRRSTRequest(tree, tuple(facilities[:3]), 2, ENDPOINT)
        c = EvaluateRequest(tree, facilities[0], ENDPOINT)
        plain = evaluate_service(tree, facilities[0], ENDPOINT)

        async def main():
            with QueryRuntime(_config("serial")) as runtime:
                async with QueryService(
                    runtime, ServiceConfig(batch_window=0.05)
                ) as service:
                    tasks = []
                    for req in (a, x, c):
                        tasks.append(
                            asyncio.ensure_future(service.submit(req))
                        )
                        await asyncio.sleep(0)  # register in order
                    results = await asyncio.wait_for(
                        asyncio.gather(*tasks), timeout=30
                    )
                    return results, service.stats

        results, stats = asyncio.run(main())
        assert results[0].value == plain
        assert results[2].value == plain
        assert results[1].value.ranking  # the foreign request ran too
        # both evaluates batched — in two groups, split by the closure
        assert stats.probe_units_batched == 2
        _assert_outcomes_sum(stats)


class TestKnobAndWire:
    def test_batch_window_validation(self):
        with pytest.raises(QueryError, match="batch_window"):
            ServiceConfig(batch_window=-0.001)
        assert ServiceConfig().batch_window == 0.0

    def test_probe_units_batched_round_trips_on_the_wire(self):
        stats = ServiceStats(
            requests_submitted=4,
            requests_completed=4,
            probe_units_planned=4,
            probe_units_batched=4,
        )
        decoded = wire.decode_service_stats(wire.encode_service_stats(stats))
        assert decoded == stats
        assert decoded.probe_units_batched == 4
