"""Unit and property tests for repro.core.geometry."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import BBox, GeometryError, Point
from repro.core.geometry import (
    bbox_of_points,
    dist,
    dist_sq,
    point_segment_dist,
    polyline_length,
)

from .strategies import points


class TestPoint:
    def test_distance_pythagoras(self):
        assert dist(Point(0, 0), Point(3, 4)) == 5.0

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, 2.5), Point(-3.0, 7.0)
        assert dist(a, b) == dist(b, a)

    def test_dist_sq_matches_dist(self):
        a, b = Point(1, 2), Point(4, 6)
        assert dist_sq(a, b) == pytest.approx(dist(a, b) ** 2)

    def test_rejects_nan(self):
        with pytest.raises(GeometryError):
            Point(float("nan"), 0.0)

    def test_rejects_inf(self):
        with pytest.raises(GeometryError):
            Point(0.0, float("inf"))

    def test_iteration_and_tuple(self):
        p = Point(3.0, 4.0)
        assert tuple(p) == (3.0, 4.0)
        assert p.as_tuple() == (3.0, 4.0)

    def test_equality_and_hash(self):
        assert Point(1, 2) == Point(1.0, 2.0)
        assert hash(Point(1, 2)) == hash(Point(1.0, 2.0))

    @given(points(), points())
    def test_triangle_inequality_through_origin(self, a, b):
        origin = Point(0.0, 0.0)
        assert dist(a, b) <= dist(a, origin) + dist(origin, b) + 1e-9


class TestSegmentDistance:
    def test_projection_inside_segment(self):
        d = point_segment_dist(Point(1, 1), Point(0, 0), Point(2, 0))
        assert d == pytest.approx(1.0)

    def test_projection_clamps_to_endpoint(self):
        d = point_segment_dist(Point(5, 1), Point(0, 0), Point(2, 0))
        assert d == pytest.approx(math.hypot(3, 1))

    def test_degenerate_segment(self):
        d = point_segment_dist(Point(1, 1), Point(0, 0), Point(0, 0))
        assert d == pytest.approx(math.sqrt(2))

    @given(points(), points(), points())
    def test_never_exceeds_endpoint_distances(self, p, a, b):
        d = point_segment_dist(p, a, b)
        assert d <= dist(p, a) + 1e-9
        assert d <= dist(p, b) + 1e-9


class TestPolylineLength:
    def test_two_points(self):
        assert polyline_length([Point(0, 0), Point(3, 4)]) == 5.0

    def test_single_point_is_zero(self):
        assert polyline_length([Point(1, 1)]) == 0.0

    def test_empty_is_zero(self):
        assert polyline_length([]) == 0.0

    def test_accumulates_segments(self):
        pts = [Point(0, 0), Point(1, 0), Point(1, 1)]
        assert polyline_length(pts) == pytest.approx(2.0)


class TestBBox:
    def test_rejects_inverted(self):
        with pytest.raises(GeometryError):
            BBox(1, 0, 0, 1)

    def test_rejects_nan(self):
        with pytest.raises(GeometryError):
            BBox(0, 0, float("nan"), 1)

    def test_zero_area_box_is_valid(self):
        b = BBox(1, 1, 1, 1)
        assert b.area() == 0.0
        assert b.contains_point(Point(1, 1))

    def test_contains_point_boundary_closed(self):
        b = BBox(0, 0, 10, 10)
        assert b.contains_point(Point(0, 0))
        assert b.contains_point(Point(10, 10))
        assert not b.contains_point(Point(10.0001, 5))

    def test_contains_bbox(self):
        outer, inner = BBox(0, 0, 10, 10), BBox(2, 2, 8, 8)
        assert outer.contains_bbox(inner)
        assert not inner.contains_bbox(outer)
        assert outer.contains_bbox(outer)

    def test_intersects_edge_touching(self):
        assert BBox(0, 0, 1, 1).intersects(BBox(1, 1, 2, 2))

    def test_disjoint_do_not_intersect(self):
        assert not BBox(0, 0, 1, 1).intersects(BBox(2, 2, 3, 3))

    def test_expanded(self):
        b = BBox(0, 0, 2, 2).expanded(1.0)
        assert (b.xmin, b.ymin, b.xmax, b.ymax) == (-1, -1, 3, 3)

    def test_expanded_rejects_negative(self):
        with pytest.raises(GeometryError):
            BBox(0, 0, 1, 1).expanded(-0.5)

    def test_intersection(self):
        got = BBox(0, 0, 4, 4).intersection(BBox(2, 2, 6, 6))
        assert got == BBox(2, 2, 4, 4)

    def test_intersection_disjoint_is_none(self):
        assert BBox(0, 0, 1, 1).intersection(BBox(5, 5, 6, 6)) is None

    def test_union(self):
        got = BBox(0, 0, 1, 1).union(BBox(5, 5, 6, 6))
        assert got == BBox(0, 0, 6, 6)

    def test_intersects_circle_nearest_point(self):
        b = BBox(0, 0, 2, 2)
        assert b.intersects_circle(Point(3, 1), 1.0)
        assert not b.intersects_circle(Point(3.01, 1), 1.0)

    def test_intersects_circle_center_inside(self):
        assert BBox(0, 0, 2, 2).intersects_circle(Point(1, 1), 0.0)

    def test_intersects_circle_negative_radius(self):
        with pytest.raises(GeometryError):
            BBox(0, 0, 1, 1).intersects_circle(Point(0, 0), -1.0)


class TestQuadrants:
    def test_quadrants_tile_parent(self):
        b = BBox(0, 0, 8, 4)
        q = b.quadrants()
        assert q[0] == BBox(0, 0, 4, 2)  # SW
        assert q[1] == BBox(4, 0, 8, 2)  # SE
        assert q[2] == BBox(0, 2, 4, 4)  # NW
        assert q[3] == BBox(4, 2, 8, 4)  # NE

    def test_quadrant_of_matches_quadrants(self):
        b = BBox(0, 0, 10, 10)
        for p, expected in [
            (Point(1, 1), 0),
            (Point(9, 1), 1),
            (Point(1, 9), 2),
            (Point(9, 9), 3),
        ]:
            assert b.quadrant_of(p) == expected
            assert b.quadrants()[expected].contains_point(p)

    def test_split_line_routes_upper_right(self):
        b = BBox(0, 0, 10, 10)
        assert b.quadrant_of(Point(5, 5)) == 3
        assert b.quadrant_of(Point(5, 0)) == 1
        assert b.quadrant_of(Point(0, 5)) == 2

    def test_quadrant_index_bounds(self):
        with pytest.raises(GeometryError):
            BBox(0, 0, 1, 1).quadrant(4)

    @given(points())
    def test_every_point_lands_in_its_quadrant(self, p):
        b = BBox(0, 0, 1024, 1024)
        q = b.quadrant_of(p)
        assert b.quadrants()[q].contains_point(p)

    def test_quadrant_areas_sum_to_parent(self):
        b = BBox(0, 0, 6, 8)
        assert sum(q.area() for q in b.quadrants()) == pytest.approx(b.area())


class TestBBoxOfPoints:
    def test_single_point(self):
        b = bbox_of_points([Point(2, 3)])
        assert b == BBox(2, 3, 2, 3)

    def test_many_points(self):
        b = bbox_of_points([Point(1, 5), Point(4, 2), Point(3, 3)])
        assert b == BBox(1, 2, 4, 5)

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            bbox_of_points([])

    @given(st.lists(points(), min_size=1, max_size=20))
    def test_contains_all_inputs(self, pts):
        b = bbox_of_points(pts)
        assert all(b.contains_point(p) for p in pts)
