"""Unit tests for facility components (divide step of Algorithm 1)."""

from __future__ import annotations

import pytest

from repro import BBox, FacilityRoute, Point
from repro.queries.components import FacilityComponent, intersecting_components


def make_component(stops, psi=10.0, fid=0):
    return FacilityComponent.whole(FacilityRoute(fid, stops), psi)


class TestFacilityComponent:
    def test_whole_keeps_all_stops(self):
        c = make_component([(0, 0), (50, 50), (100, 100)])
        assert c.stops.n_stops == 3
        assert not c.is_empty

    def test_embr_is_expanded_bbox(self):
        c = make_component([(0, 0), (100, 100)], psi=10.0)
        assert c.embr == BBox(-10, -10, 110, 110)

    def test_restricted_keeps_stops_within_psi_of_box(self):
        c = make_component([(0, 0), (50, 50), (200, 200)], psi=10.0)
        sub = c.restricted_to(BBox(40, 40, 60, 60))
        assert sub.stops.n_stops == 1  # only (50, 50)

    def test_restricted_includes_nearby_outside_stops(self):
        """A stop just outside the box can still serve points inside."""
        c = make_component([(65, 50)], psi=10.0)
        sub = c.restricted_to(BBox(40, 40, 60, 60))
        assert sub.stops.n_stops == 1

    def test_restricted_empty(self):
        c = make_component([(500, 500)], psi=10.0)
        sub = c.restricted_to(BBox(0, 0, 100, 100))
        assert sub.is_empty
        assert sub.embr is None

    def test_region_test_respects_discs(self):
        c = make_component([(0, 0)], psi=10.0)
        test = c.region_test()
        assert test(BBox(5, 5, 20, 20))
        assert not test(BBox(50, 50, 60, 60))

    def test_region_test_empty_component(self):
        c = make_component([(500, 500)], psi=1.0).restricted_to(BBox(0, 0, 10, 10))
        assert not c.region_test()(BBox(0, 0, 1000, 1000))

    def test_region_test_tighter_than_embr(self):
        """An L-shaped facility: the EMBR corner is far from every disc."""
        c = make_component([(0, 0), (100, 0), (0, 100)], psi=5.0)
        corner = BBox(90, 90, 100, 100)  # inside EMBR, outside every disc
        assert c.embr.intersects(corner)
        assert not c.region_test()(corner)


class TestIntersectingComponents:
    def test_divides_over_children(self):
        parent = BBox(0, 0, 100, 100)
        comp = make_component([(10, 10), (90, 90)], psi=5.0)
        children = list(parent.quadrants())
        parts = intersecting_components(children, comp)
        assert parts[0] is not None and parts[0].stops.n_stops == 1  # SW
        assert parts[3] is not None and parts[3].stops.n_stops == 1  # NE
        assert parts[1] is None and parts[2] is None

    def test_boundary_stop_lands_in_multiple_children(self):
        parent = BBox(0, 0, 100, 100)
        comp = make_component([(50, 50)], psi=5.0)
        parts = intersecting_components(list(parent.quadrants()), comp)
        present = [p for p in parts if p is not None]
        assert len(present) == 4  # within psi of every quadrant

    def test_component_ids_preserved(self):
        parent = BBox(0, 0, 100, 100)
        comp = make_component([(10, 10)], psi=5.0, fid=42)
        parts = intersecting_components(list(parent.quadrants()), comp)
        assert parts[0] is not None and parts[0].facility_id == 42

    def test_union_of_children_covers_component_serving_area(self):
        """No stop relevant to a child is dropped by the division."""
        parent = BBox(0, 0, 100, 100)
        stops = [(i * 9.0, (i * 17) % 100) for i in range(12)]
        comp = make_component(stops, psi=8.0)
        parts = intersecting_components(list(parent.quadrants()), comp)
        for child_box, part in zip(parent.quadrants(), parts):
            serving = child_box.expanded(8.0)
            expected = {
                (x, y) for x, y in stops if serving.contains_point(Point(x, y))
            }
            got = (
                set()
                if part is None
                else {(x, y) for x, y in part.stops.coords.tolist()}
            )
            assert got == expected
