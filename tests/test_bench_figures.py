"""Tests for figure regeneration (tiny workloads, structure checks)."""

from __future__ import annotations

import pytest

import repro.bench.figures as figures
from repro.bench.figures import Figure, Series, render, run_figure
from repro.bench.harness import WorkloadFactory, _Defaults

TINY = _Defaults(
    users_per_day=80,
    day_sweep=(0.5, 1.0),
    n_stops=8,
    stop_sweep=(4, 8),
    n_facilities=4,
    facility_sweep=(2, 4),
    k=2,
    k_sweep=(1, 2),
    psi=400.0,
    beta=8,
    city_seed=3,
    city_size=3_000.0,
)


@pytest.fixture()
def tiny(monkeypatch):
    """A tiny factory with the figure module's sweep globals shrunk."""
    monkeypatch.setattr(figures, "DEFAULTS", TINY)
    return WorkloadFactory(TINY)


def series_dict(fig: Figure):
    return {s.name: s.points for s in fig.series}


class TestRender:
    def test_renders_all_series_and_rows(self):
        fig = Figure("Figure X", "demo", "x", "seconds")
        fig.series_named("A").add(1, 0.5)
        fig.series_named("A").add(2, 0.25)
        fig.series_named("B").add(1, 1.5)
        text = render(fig)
        assert "Figure X" in text
        assert "A" in text and "B" in text
        assert "0.50000" in text and "1.50000" in text
        assert "nan" in text  # B has no value at x=2

    def test_series_named_reuses(self):
        fig = Figure("f", "t", "x", "y")
        a = fig.series_named("A")
        assert fig.series_named("A") is a

    def test_notes_rendered(self):
        fig = Figure("f", "t", "x", "y", notes="hello")
        assert "hello" in render(fig)


class TestRunFigure:
    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_figure("fig99")

    def test_table3_is_static(self, tiny):
        (fig,) = run_figure("table3", tiny)
        names = {x for s in fig.series for x, _ in s.points}
        assert {"n_trajectories", "n_stops", "n_facilities", "k"} <= names

    def test_fig6a_structure(self, tiny):
        (fig,) = run_figure("fig6a", tiny)
        got = series_dict(fig)
        assert set(got) == {"BL", "TQ(B)", "TQ(Z)"}
        for name, points in got.items():
            assert [x for x, _ in points] == list(TINY.day_sweep)
            assert all(y >= 0 for _, y in points)

    def test_fig7b_k_sweep(self, tiny):
        (fig,) = run_figure("fig7b", tiny)
        got = series_dict(fig)
        for points in got.values():
            assert [x for x, _ in points] == list(TINY.k_sweep)

    def test_fig10_pairs(self, tiny):
        figs = run_figure("fig10ab", tiny)
        assert len(figs) == 2
        time_fig, served_fig = figs
        assert "time" in time_fig.title
        assert "served" in served_fig.title
        for s in served_fig.series:
            assert all(y >= 0 for _, y in s.points)

    def test_fig11_ratios_bounded(self, tiny):
        figs = run_figure("fig11", tiny)
        assert len(figs) == 2
        for fig in figs:
            for s in fig.series:
                assert all(0.0 <= y <= 1.0 for _, y in s.points)

    def test_construction_two_series(self, tiny):
        (fig,) = run_figure("construction", tiny)
        assert {s.name for s in fig.series} == {"TQ(B)", "TQ(Z)"}

    def test_ablation_pruning_bounded_by_stored(self, tiny):
        (fig,) = run_figure("ablation_pruning", tiny)
        got = series_dict(fig)
        stored = dict(got["stored entries"])
        for name in ("TQ(B)", "TQ(Z)"):
            for x, y in got[name]:
                assert y <= stored[x]

    def test_all_registry_names_resolve(self):
        for name, fn in figures.ALL_FIGURES.items():
            assert callable(fn), name


class TestRuntimeAwareSweeps:
    """The Figure 6–9 sweeps must run under any execution policy and
    shard count (the driver's ``--runtime`` flag) with the same series
    structure as the legacy path."""

    @pytest.mark.parametrize(
        "spec", ["serial:1", "threads:2:2", "processes:2:2"]
    )
    def test_fig6a_structure_under_policies(self, monkeypatch, spec):
        from repro.bench.harness import parse_runtime_spec

        monkeypatch.setattr(figures, "DEFAULTS", TINY)
        factory = WorkloadFactory(
            TINY, runtime_config=parse_runtime_spec(spec)
        )
        (fig,) = run_figure("fig6a", factory)
        got = series_dict(fig)
        assert set(got) == {"BL", "TQ(B)", "TQ(Z)"}
        for points in got.values():
            assert [x for x, _ in points] == list(TINY.day_sweep)
            assert all(y >= 0 for _, y in points)

    def test_fig7b_and_fig10_run_under_runtime(self, monkeypatch):
        from repro.bench.harness import parse_runtime_spec

        monkeypatch.setattr(figures, "DEFAULTS", TINY)
        factory = WorkloadFactory(
            TINY, runtime_config=parse_runtime_spec("threads:2:2")
        )
        (fig7,) = run_figure("fig7b", factory)
        for points in series_dict(fig7).values():
            assert [x for x, _ in points] == list(TINY.k_sweep)
        time_fig, served_fig = run_figure("fig10ab", factory)
        # the runtime never changes answers: "# users served" under a
        # runtime equals the legacy path's
        plain_served = series_dict(
            run_figure("fig10ab", WorkloadFactory(TINY))[1]
        )
        assert series_dict(served_fig) == plain_served

    def test_main_accepts_runtime_flag(self, monkeypatch, capsys):
        monkeypatch.setattr(figures, "DEFAULTS", TINY)
        # table3 is static (no sweeps), so main() stays fast while still
        # exercising the --runtime CLI wiring end to end
        assert figures.main(["table3", "--runtime", "serial:1"]) == 0
        out = capsys.readouterr().out
        assert "runtime:" in out and "Table III" in out
