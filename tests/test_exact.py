"""Tests for the exact (branch & bound) MaxkCovRST solver."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings

from repro import (
    CoverageState,
    QueryError,
    ServiceModel,
    ServiceSpec,
    TQTree,
    TQTreeConfig,
    approximation_ratio,
    brute_force_combined_service,
    brute_force_matches,
    exact_max_k_coverage,
    genetic_max_k_coverage,
    greedy_max_k_coverage,
)
from repro.queries import tq_match_fn

from .strategies import WORLD, facility_sets, psis, trajectory_sets


def oracle_best(users, facs, k, spec):
    """Literal enumeration of all size-k combinations."""
    best = 0.0
    for combo in itertools.combinations(facs, min(k, len(facs))):
        best = max(best, brute_force_combined_service(users, list(combo), spec))
    return best


def match_fn_for(users, spec):
    def fn(f):
        return brute_force_matches(users, f, spec.psi)

    return fn


class TestExact:
    def test_matches_enumeration_on_fixture(self, taxi_users, facilities, endpoint_spec):
        result = exact_max_k_coverage(
            taxi_users, facilities, 2, endpoint_spec,
            match_fn_for(taxi_users, endpoint_spec),
        )
        assert result.combined_service == pytest.approx(
            oracle_best(taxi_users, facilities, 2, endpoint_spec)
        )

    def test_dominates_greedy_and_genetic(self, taxi_users, facilities, endpoint_spec):
        fn = match_fn_for(taxi_users, endpoint_spec)
        exact = exact_max_k_coverage(taxi_users, facilities, 3, endpoint_spec, fn)
        greedy = greedy_max_k_coverage(taxi_users, facilities, 3, endpoint_spec, fn)
        ga = genetic_max_k_coverage(taxi_users, facilities, 3, endpoint_spec, fn)
        assert exact.combined_service >= greedy.combined_service - 1e-9
        assert exact.combined_service >= ga.combined_service - 1e-9

    def test_invalid_k(self, taxi_users, facilities, endpoint_spec):
        with pytest.raises(QueryError):
            exact_max_k_coverage(taxi_users, facilities, 0, endpoint_spec, lambda f: {})

    def test_empty_facilities_rejected(self, taxi_users, endpoint_spec):
        # an empty candidate set is a malformed query, not an empty
        # fleet (the serving-layer hardening fix)
        with pytest.raises(QueryError, match="facilities must be non-empty"):
            exact_max_k_coverage(taxi_users, [], 2, endpoint_spec, lambda f: {})

    def test_k_covers_all_facilities(self, taxi_users, facilities, endpoint_spec):
        fn = match_fn_for(taxi_users, endpoint_spec)
        result = exact_max_k_coverage(
            taxi_users, facilities, len(facilities), endpoint_spec, fn
        )
        assert result.combined_service == pytest.approx(
            brute_force_combined_service(taxi_users, list(facilities), endpoint_spec)
        )

    def test_count_model(self, checkin_users, facilities, count_spec):
        fn = match_fn_for(checkin_users, count_spec)
        result = exact_max_k_coverage(checkin_users, facilities[:6], 2, count_spec, fn)
        assert result.combined_service == pytest.approx(
            oracle_best(checkin_users, facilities[:6], 2, count_spec)
        )

    @settings(max_examples=20, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=10, min_points=2, max_points=2),
        facility_sets(min_size=1, max_size=6),
        psis(),
    )
    def test_random_instances_match_enumeration(self, users, facs, psi):
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=psi)
        fn = match_fn_for(users, spec)
        result = exact_max_k_coverage(users, facs, 3, spec, fn)
        assert result.combined_service == pytest.approx(
            oracle_best(users, facs, 3, spec)
        )

    @settings(max_examples=15, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=8, min_points=2, max_points=4),
        facility_sets(min_size=1, max_size=5),
        psis(),
    )
    def test_random_count_instances(self, users, facs, psi):
        spec = ServiceSpec(ServiceModel.COUNT, psi=psi, normalize=False)
        fn = match_fn_for(users, spec)
        result = exact_max_k_coverage(users, facs, 2, spec, fn)
        assert result.combined_service == pytest.approx(
            oracle_best(users, facs, 2, spec)
        )


class TestApproximationRatio:
    def test_ratio_bounds(self, taxi_users, facilities, endpoint_spec):
        fn = match_fn_for(taxi_users, endpoint_spec)
        exact = exact_max_k_coverage(taxi_users, facilities, 3, endpoint_spec, fn)
        greedy = greedy_max_k_coverage(taxi_users, facilities, 3, endpoint_spec, fn)
        ratio = approximation_ratio(greedy, exact)
        assert 0.0 <= ratio <= 1.0

    def test_zero_optimum_gives_one(self):
        from repro.queries.maxkcov import MaxKCovResult

        empty = MaxKCovResult((), 0.0, 0, ())
        assert approximation_ratio(empty, empty) == 1.0

    def test_identical_results_give_one(self, taxi_users, facilities, endpoint_spec):
        fn = match_fn_for(taxi_users, endpoint_spec)
        exact = exact_max_k_coverage(taxi_users, facilities, 2, endpoint_spec, fn)
        assert approximation_ratio(exact, exact) == 1.0
