"""End-to-end integration tests mirroring the paper's three scenarios."""

from __future__ import annotations

import pytest

from repro import (
    BaselineIndex,
    CityModel,
    ServiceModel,
    ServiceSpec,
    brute_force_service,
    build_full,
    build_segmented,
    build_tq_basic,
    build_tq_zorder,
    evaluate_service,
    generate_bus_routes,
    generate_checkin_trajectories,
    generate_gps_traces,
    generate_taxi_trips,
    maxkcov_tq,
    segment_dataset,
    top_k_facilities,
)
from repro.queries import tq_match_fn


@pytest.fixture(scope="module")
def big_city():
    return CityModel.generate(seed=21, size=20_000.0, n_hotspots=8)


class TestScenario1CommuterRouting:
    """Paper Scenario 1: serve commuters whose source and destination are
    both within psi of a stop (the NYT experiment setup)."""

    def test_three_indexes_agree_end_to_end(self, big_city):
        users = generate_taxi_trips(1500, big_city, seed=1)
        buses = generate_bus_routes(24, big_city, seed=2, n_stops=24)
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=350.0)

        tz = build_tq_zorder(users, beta=32)
        tb = build_tq_basic(users, beta=32)
        bl = BaselineIndex.build(users)

        rz = top_k_facilities(tz, buses, 8, spec)
        rb = top_k_facilities(tb, buses, 8, spec)
        rbl = bl.top_k(buses, 8, spec)
        assert rz.services() == pytest.approx(rb.services())
        assert rz.services() == pytest.approx(rbl.services())

    def test_maxkcov_serves_more_than_topk_union_or_equal(self, big_city):
        """Greedy coverage >= coverage of the top-k individually best
        facilities (it may pick exactly them)."""
        from repro import brute_force_combined_service

        users = generate_taxi_trips(800, big_city, seed=3)
        buses = generate_bus_routes(16, big_city, seed=4, n_stops=24)
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=350.0)
        tree = build_tq_zorder(users, beta=32)
        topk = top_k_facilities(tree, buses, 3, spec)
        cov = maxkcov_tq(tree, buses, 3, spec, prune_factor=len(buses))
        top_union = brute_force_combined_service(
            users, list(topk.facilities()), spec
        )
        assert cov.combined_service >= top_union - 1e-9


class TestScenario2TouristPOIs:
    """Paper Scenario 2: tourists with POI lists, partial service counts
    visited POIs (the NYF experiment setup)."""

    def test_segmented_and_full_agree(self, big_city):
        users = generate_checkin_trajectories(400, big_city, seed=5)
        buses = generate_bus_routes(12, big_city, seed=6, n_stops=32)
        spec = ServiceSpec(ServiceModel.COUNT, psi=350.0)
        s_tq = build_segmented(users, beta=32)
        f_tq = build_full(users, beta=32)
        rs = top_k_facilities(s_tq, buses, 4, spec)
        rf = top_k_facilities(f_tq, buses, 4, spec)
        assert rs.services() == pytest.approx(rf.services())

    def test_partial_service_values_in_unit_range(self, big_city):
        users = generate_checkin_trajectories(200, big_city, seed=7)
        buses = generate_bus_routes(6, big_city, seed=8, n_stops=32)
        spec = ServiceSpec(ServiceModel.COUNT, psi=350.0)
        tree = build_segmented(users, beta=32)
        for f in buses:
            so = evaluate_service(tree, f, spec)
            assert 0.0 <= so <= len(users)


class TestScenario3AdvertisingLength:
    """Paper Scenario 3: maximise served journey length (Wi-Fi / ads)."""

    def test_length_model_end_to_end(self, big_city):
        users = generate_gps_traces(120, big_city, seed=9, min_points=10, max_points=25)
        buses = generate_bus_routes(10, big_city, seed=10, n_stops=48)
        spec = ServiceSpec(ServiceModel.LENGTH, psi=350.0, normalize=False)
        tree = build_segmented(users, beta=32)
        result = top_k_facilities(tree, buses, 3, spec)
        for fs in result.ranking:
            assert fs.service == pytest.approx(
                brute_force_service(users, fs.facility, spec)
            )

    def test_bjg_style_segment_dataset(self, big_city):
        """The paper's BJG setup: every point pair becomes its own
        2-point trajectory, then endpoint queries run over segments."""
        traces = generate_gps_traces(60, big_city, seed=11, min_points=8, max_points=15)
        segments = segment_dataset(traces)
        assert len(segments) == sum(t.n_points - 1 for t in traces)
        assert all(s.n_points == 2 for s in segments)
        buses = generate_bus_routes(8, big_city, seed=12, n_stops=32)
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=350.0)
        tree = build_tq_zorder(segments, beta=32)
        result = top_k_facilities(tree, buses, 3, spec)
        for fs in result.ranking:
            assert fs.service == pytest.approx(
                brute_force_service(segments, fs.facility, spec)
            )


class TestDynamicWorkflow:
    def test_inserts_then_queries(self, big_city):
        """Online updates (Section III-C): insert a second day of trips,
        answers must reflect both batches exactly."""
        day1 = generate_taxi_trips(400, big_city, seed=13)
        day2 = generate_taxi_trips(200, big_city, seed=14, start_id=400)
        buses = generate_bus_routes(8, big_city, seed=15, n_stops=24)
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=350.0)

        tree = build_tq_zorder(day1, beta=16, space=big_city.bounds)
        for u in day2:
            tree.insert(u)
        everyone = day1 + day2
        for f in buses:
            assert evaluate_service(tree, f, spec) == pytest.approx(
                brute_force_service(everyone, f, spec)
            )

    def test_coverage_pipeline_after_inserts(self, big_city):
        day1 = generate_taxi_trips(300, big_city, seed=16)
        day2 = generate_taxi_trips(150, big_city, seed=17, start_id=300)
        buses = generate_bus_routes(10, big_city, seed=18, n_stops=24)
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=350.0)
        tree = build_tq_zorder(day1, beta=16, space=big_city.bounds)
        for u in day2:
            tree.insert(u)
        result = maxkcov_tq(tree, buses, 2, spec)
        from repro import brute_force_combined_service

        assert result.combined_service == pytest.approx(
            brute_force_combined_service(day1 + day2, list(result.selection), spec)
        )
