"""Unit and property tests for the baseline point quadtree."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import BBox, Point, PointQuadtree
from repro.core.errors import IndexError_

from .strategies import WORLD, points


def brute_rect(items, rect):
    return sorted(
        (p.as_tuple(), v) for p, v in items if rect.contains_point(p)
    )


def brute_circle(items, center, radius):
    return sorted(
        (p.as_tuple(), v)
        for p, v in items
        if p.dist_to(center) <= radius
    )


class TestConstruction:
    def test_invalid_capacity(self):
        with pytest.raises(IndexError_):
            PointQuadtree(WORLD, capacity=0)

    def test_invalid_depth(self):
        with pytest.raises(IndexError_):
            PointQuadtree(WORLD, max_depth=0)

    def test_insert_outside_space_rejected(self):
        qt = PointQuadtree(WORLD)
        with pytest.raises(IndexError_):
            qt.insert(Point(-1, 0), "x")

    def test_len_counts_inserts(self):
        qt = PointQuadtree(WORLD, capacity=2)
        for i in range(10):
            qt.insert(Point(i * 10, i * 10), i)
        assert len(qt) == 10

    def test_duplicate_points_allowed(self):
        qt = PointQuadtree(WORLD, capacity=2, max_depth=4)
        for i in range(20):
            qt.insert(Point(5, 5), i)
        assert len(qt) == 20
        hits = list(qt.query_circle(Point(5, 5), 0.0))
        assert len(hits) == 20

    def test_split_reduces_leaf_occupancy(self):
        qt = PointQuadtree(WORLD, capacity=4)
        pts = [Point(i * 97 % 1000, i * 61 % 1000) for i in range(100)]
        for i, p in enumerate(pts):
            qt.insert(p, i)
        assert qt.height() > 1
        assert qt.n_nodes() > 1


class TestQueries:
    def test_rect_query_exact(self):
        qt = PointQuadtree(WORLD, capacity=3)
        items = [(Point((i * 50.0) % 1000, (i * 37) % 1000), i) for i in range(40)]
        qt.extend(items)
        rect = BBox(100, 100, 600, 600)
        got = sorted((p.as_tuple(), v) for p, v in qt.query_rect(rect))
        assert got == brute_rect(items, rect)

    def test_circle_query_exact(self):
        qt = PointQuadtree(WORLD, capacity=3)
        items = [(Point((i * 50.0) % 1000, (i * 37) % 1000), i) for i in range(40)]
        qt.extend(items)
        center, radius = Point(500, 500), 250.0
        got = sorted((p.as_tuple(), v) for p, v in qt.query_circle(center, radius))
        assert got == brute_circle(items, center, radius)

    def test_negative_radius_rejected(self):
        qt = PointQuadtree(WORLD)
        with pytest.raises(IndexError_):
            list(qt.query_circle(Point(0, 0), -1.0))

    def test_empty_tree_queries(self):
        qt = PointQuadtree(WORLD)
        assert list(qt.query_rect(WORLD)) == []
        assert list(qt.query_circle(Point(1, 1), 100.0)) == []

    def test_zero_radius_finds_exact_point(self):
        qt = PointQuadtree(WORLD)
        qt.insert(Point(3, 4), "hit")
        got = list(qt.query_circle(Point(3, 4), 0.0))
        assert got == [(Point(3, 4), "hit")]

    @given(
        st.lists(st.tuples(points(), st.integers()), min_size=0, max_size=60),
        points(),
        st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
    )
    def test_circle_matches_brute_force(self, items, center, radius):
        qt = PointQuadtree(WORLD, capacity=4, max_depth=8)
        qt.extend(items)
        got = sorted((p.as_tuple(), v) for p, v in qt.query_circle(center, radius))
        assert got == brute_circle(items, center, radius)

    @given(st.lists(st.tuples(points(), st.integers()), min_size=0, max_size=60))
    def test_rect_matches_brute_force(self, items):
        qt = PointQuadtree(WORLD, capacity=4, max_depth=8)
        qt.extend(items)
        rect = BBox(200, 150, 700, 800)
        got = sorted((p.as_tuple(), v) for p, v in qt.query_rect(rect))
        assert got == brute_rect(items, rect)
