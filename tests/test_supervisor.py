"""Differential suite for the prefork scale-out supervisor (PR 9).

The contract extends the HTTP suite one level out: the *process model*
never changes an answer or a counter.  For all five query types, the
decoded answers — value, per-request stats, match sets — from a
multi-worker prefork pool must be ``==`` to the wire projection of the
in-process :class:`repro.service.QueryService` for the identical
request sequence, across worker counts {1, 2, 4}, both ``fork`` and
``spawn`` start methods, with a batch window open, and across a
mid-run worker crash + respawn.  On top of parity: the aggregated
``/stats`` outcome-sum invariant under concurrent multi-worker load,
the zero-copy evidence when serving a ``store:<dir>`` catalog (mmap
paths on every worker, zero shared-memory segments), client GET
retry across a worker restart, and ephemeral ports throughout (no
fixed-port collisions anywhere in this file).

Sequential submissions go through :class:`ShardedServeClient`: its
consistent-hash affinity pins every request for one (tree, facility
set) pair to one worker, so per-request stats are bit-identical to the
single-process sequence — the same determinism argument the in-process
suite relies on, surviving the fan-out.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro import (
    ProximityBackend,
    QueryRuntime,
    QueryService,
    RuntimeConfig,
    ServiceConfig,
)
from repro.core.config import HttpConfig
from repro.service.http import (
    ServeClient,
    ShardedServeClient,
    Supervisor,
    background_server,
    catalog_from_spec,
    wire_result,
)
from repro.service.http import wire

PSI = 400.0
SPEC = {"model": "endpoint", "psi": PSI}
COUNT_SPEC = {"model": "count", "psi": PSI}
LENGTH_SPEC = {"model": "length", "psi": PSI}

#: The catalog every leg serves, as a *spec* (spawn-mode workers
#: re-resolve it by string, so the oracle must build from the same
#: grammar — build_demo_catalog is deterministic, pinned by test_http).
CATALOG_SPEC = "demo:300:10:12:7"

RUNTIME_CONFIG = RuntimeConfig(
    backend=ProximityBackend.GRID, policy="threads", shards=2, max_workers=2
)
SERVICE_CONFIG = ServiceConfig(max_in_flight=4, queue_depth=64)

START_METHODS = ("fork", "spawn")


def _http_config(n_workers: int, start_method=None, **overrides) -> HttpConfig:
    kwargs = dict(
        port=0, catalog=CATALOG_SPEC, workers=n_workers,
        start_method=start_method, runtime=RUNTIME_CONFIG,
        service=SERVICE_CONFIG,
    )
    kwargs.update(overrides)
    return HttpConfig(**kwargs)


def _payloads():
    """One wire request per query type, plus a duplicate evaluate (the
    coalescer-replay case), in a fixed submission order — the same
    shape the single-process differential suite pins."""
    return [
        {"type": "evaluate", "tree": "demo", "facility_set": "demo",
         "facility_id": 0, "spec": COUNT_SPEC},
        {"type": "evaluate", "tree": "demo", "facility_set": "demo",
         "facility_id": 1, "spec": LENGTH_SPEC, "collect_matches": True},
        {"type": "evaluate", "tree": "demo", "facility_set": "demo",
         "facility_id": 0, "spec": COUNT_SPEC},  # duplicate
        {"type": "kmaxrrst", "tree": "demo", "facility_set": "demo",
         "k": 3, "spec": SPEC},
        {"type": "maxkcov", "tree": "demo", "facility_set": "demo",
         "k": 2, "spec": SPEC, "prune_factor": 4},
        {"type": "exact", "tree": "demo", "facility_set": "demo",
         "facility_ids": [0, 1, 2, 3], "k": 2, "spec": SPEC},
        {"type": "genetic", "tree": "demo", "facility_set": "demo",
         "facility_ids": [0, 1, 2, 3], "k": 2, "spec": SPEC,
         "config": {"seed": 3, "iterations": 5, "population_size": 8}},
    ]


@pytest.fixture(scope="module")
def expected():
    """The in-process QueryService's answers for the sequence, through
    the wire codecs — what any worker count must reproduce exactly."""
    catalog = catalog_from_spec(CATALOG_SPEC)
    requests = [wire.decode_request(p, catalog) for p in _payloads()]

    async def drive():
        with QueryRuntime(RUNTIME_CONFIG) as runtime:
            async with QueryService(runtime, SERVICE_CONFIG) as service:
                results = []
                for request in requests:  # sequential, like one socket
                    results.append(await service.submit(request))
                return results

    return [wire_result(r) for r in asyncio.run(drive())]


def _wait_for_respawn(supervisor: Supervisor, n_respawns: int,
                      timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if (supervisor.respawns >= n_respawns
                and len(supervisor.worker_table()) == supervisor.config.workers):
            return
        time.sleep(0.05)
    raise AssertionError(
        f"worker pool did not respawn within {timeout}s "
        f"(respawns={supervisor.respawns})"
    )


class TestDifferentialAcrossWorkers:
    def test_single_process_is_the_oracle(self, expected):
        """workers=1 (the classic server) over the same catalog spec —
        the base case of the {1, 2, 4} matrix."""
        catalog = catalog_from_spec(CATALOG_SPEC)
        with background_server(
            catalog, runtime_config=RUNTIME_CONFIG,
            service_config=SERVICE_CONFIG,
        ) as h:
            with ServeClient(h.host, h.port) as client:
                got = [client.query(p) for p in _payloads()]
        assert got == expected

    @pytest.mark.parametrize("start_method", START_METHODS)
    @pytest.mark.parametrize("n_workers", (2, 4))
    def test_pool_bit_identical_to_single_process(
        self, expected, n_workers, start_method
    ):
        """All five query types, answers AND per-request stats, across
        the full worker x start-method matrix."""
        config = _http_config(n_workers, start_method)
        with Supervisor(config) as supervisor:
            host, port = supervisor.address
            assert port != 0  # ephemeral port resolved to a real one
            assert supervisor.start_method == start_method
            assert len(supervisor.worker_table()) == n_workers
            with ShardedServeClient(host, port) as client:
                got = [client.query(p) for p in _payloads()]
                # every worker resolved the same catalog spec (the
                # spawn path re-opens it by string)
                assert client.catalog()["spec"] == CATALOG_SPEC
        assert got == expected
        assert {r.type for r in got} == {
            "evaluate", "kmaxrrst", "maxkcov", "exact", "genetic"
        }

    def test_batch_window_pool_matches_single_process(self):
        """A pipelined submit_many wave with the server batch window
        open: the pool's answers and per-request stats must equal the
        single-process server's for the identical wave (affinity keeps
        the wave contiguous on one worker, so the window sees the same
        back-to-back arrivals)."""
        service_config = ServiceConfig(
            max_in_flight=4, queue_depth=64, batch_window=0.005
        )
        wave = [
            {"type": "evaluate", "tree": "demo", "facility_set": "demo",
             "facility_id": i % 10,
             "spec": COUNT_SPEC if i % 2 else SPEC}
            for i in range(16)
        ]
        catalog = catalog_from_spec(CATALOG_SPEC)
        with background_server(
            catalog, runtime_config=RUNTIME_CONFIG,
            service_config=service_config,
        ) as h:
            with ServeClient(h.host, h.port) as client:
                single = client.submit_many(wave)
        config = _http_config(2, "fork", service=service_config)
        with Supervisor(config) as supervisor:
            host, port = supervisor.address
            with ShardedServeClient(host, port) as client:
                pooled = client.submit_many(wave)
        assert pooled == single  # values AND stats, in wave order

    def test_kill_and_respawn_mid_run_keeps_parity(self, expected):
        """Crash the affinity worker between requests: the monitor
        reaps and respawns it, the table rebroadcasts, and the rest of
        the sequence still decodes bit-identical to the single-process
        run."""
        payloads = _payloads()
        with Supervisor(_http_config(2, "fork")) as supervisor:
            host, port = supervisor.address
            with ShardedServeClient(host, port) as client:
                got = [client.query(p) for p in payloads[:3]]
                victim = client.route(payloads[3])
                old_pid = supervisor.kill_worker(victim)
                _wait_for_respawn(supervisor, 1)
                table = {p.index: p.pid for p in supervisor.worker_table()}
                assert table[victim] != old_pid  # same slot, new process
                got.extend(client.query(p) for p in payloads[3:])
        assert supervisor.respawns == 1
        assert got == expected


class TestAggregatedStats:
    def test_outcome_sum_invariant_under_concurrent_load(self):
        """The summed service counters across workers obey
        ``submitted == completed + failed + cancelled`` after a
        concurrent multi-client run over the shared front port, and
        account for every request the clients sent."""
        n_clients, per_client = 6, 5
        payloads = _payloads()
        with Supervisor(_http_config(2, "fork")) as supervisor:
            host, port = supervisor.address
            errors = []

            def hammer(slot: int) -> None:
                try:
                    with ServeClient(host, port) as client:
                        for i in range(per_client):
                            client.query(payloads[(slot + i) % len(payloads)])
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(slot,))
                for slot in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            with ServeClient(host, port) as client:
                service_stats, _ = client.stats()
                body = client.request("GET", "/stats").body
        assert service_stats.requests_submitted == n_clients * per_client
        assert service_stats.requests_submitted == (
            service_stats.requests_completed
            + service_stats.requests_failed
            + service_stats.requests_cancelled
        )
        assert service_stats.requests_failed == 0
        # the aggregation really covered every worker
        assert len(body["workers"]) == 2
        per_worker = [
            payload["service"]["requests_completed"]
            for payload in body["workers"].values()
        ]
        assert sum(per_worker) == service_stats.requests_completed


class TestZeroCopyStoreServing:
    @pytest.fixture(scope="class")
    def store_dir(self, tmp_path_factory):
        from repro.service.http.catalog import build_store_catalog

        out = tmp_path_factory.mktemp("supervisor-store")
        build_store_catalog(
            str(out), source_spec=CATALOG_SPEC, psi_values=(PSI,),
            n_shards=2,
        )
        return str(out)

    def test_every_worker_serves_via_mmap_only(self, store_dir):
        """Serving ``store:<dir>`` with N workers must not copy index
        arrays per worker: every worker's stats section lists
        mmap-backed store paths and zero shared-memory exports."""
        import dataclasses

        config = _http_config(
            2, "spawn", catalog=f"store:{store_dir}",
            runtime=dataclasses.replace(RUNTIME_CONFIG, store_dir=store_dir),
        )
        payload = {
            "type": "evaluate", "tree": "demo", "facility_set": "demo",
            "facility_id": 0, "spec": SPEC,
        }
        with Supervisor(config) as supervisor:
            host, port = supervisor.address
            with ServeClient(host, port) as client:
                client.query(payload)
                body = client.request("GET", "/stats").body
        sections = {
            index: entry["worker"] for index, entry in body["workers"].items()
        }
        assert len(sections) == 2
        for index, worker in sections.items():
            assert worker["mmap_paths"], (
                f"worker {index} reports no mmap-backed store files"
            )
            assert worker["shm_segments"] == 0, (
                f"worker {index} exported shared-memory copies"
            )


class TestClientRetryAcrossRestart:
    def test_idempotent_get_survives_worker_crash(self):
        """A keep-alive GET whose worker dies mid-session reconnects
        and retries transparently (idempotent methods only — the
        non-idempotent POST semantics are pinned in the client suite)."""
        with Supervisor(_http_config(2, "fork")) as supervisor:
            host, port = supervisor.address
            with ServeClient(host, port) as client:
                local = client.request("GET", "/stats?scope=local").body
                mine = local["worker"]["index"]
                supervisor.kill_worker(mine)
                _wait_for_respawn(supervisor, 1)
                # the dead keep-alive surfaces on this GET; the client
                # must reconnect (landing on a live worker) and answer
                health = client.healthz()
        assert health["status"] in ("ok", "degraded")
