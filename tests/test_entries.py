"""Unit tests for index entries: decomposition, ownership, scoring."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

from repro import (
    FacilityRoute,
    IndexVariant,
    Point,
    QueryError,
    ServiceModel,
    ServiceSpec,
    StopSet,
    Trajectory,
)
from repro.core.service import score_trajectory
from repro.index.entries import (
    IndexEntry,
    SubBounds,
    make_entries,
    validate_spec_for_variant,
)

from .strategies import trajectories


def spec(model, psi=5.0, normalize=False):
    return ServiceSpec(model, psi=psi, normalize=normalize)


class TestMakeEntries:
    def test_endpoint_single_entry(self):
        t = Trajectory(1, [(0, 0), (5, 5), (9, 9)])
        entries = make_entries(t, IndexVariant.ENDPOINT)
        assert len(entries) == 1
        e = entries[0]
        assert e.gov_start == Point(0, 0)
        assert e.gov_end == Point(9, 9)
        assert e.own_point_idx == (0, 2)

    def test_endpoint_two_point_owns_segment(self):
        t = Trajectory(1, [(0, 0), (5, 5)])
        (e,) = make_entries(t, IndexVariant.ENDPOINT)
        assert e.own_seg_idx == (0,)

    def test_segmented_one_per_segment(self):
        t = Trajectory(1, [(0, 0), (1, 0), (2, 0), (3, 0)])
        entries = make_entries(t, IndexVariant.SEGMENTED)
        assert len(entries) == 3
        assert [e.seg_index for e in entries] == [0, 1, 2]
        assert entries[0].gov_start == Point(0, 0)
        assert entries[0].gov_end == Point(1, 0)
        assert entries[2].gov_end == Point(3, 0)

    def test_segmented_point_ownership_partitions(self):
        t = Trajectory(1, [(0, 0), (1, 0), (2, 0), (3, 0)])
        entries = make_entries(t, IndexVariant.SEGMENTED)
        owned = sorted(i for e in entries for i in e.own_point_idx)
        assert owned == [0, 1, 2, 3]  # every point exactly once

    def test_segmented_segment_ownership_partitions(self):
        t = Trajectory(1, [(0, 0), (1, 0), (2, 0)])
        entries = make_entries(t, IndexVariant.SEGMENTED)
        owned = sorted(i for e in entries for i in e.own_seg_idx)
        assert owned == [0, 1]

    def test_segmented_single_point(self):
        t = Trajectory(1, [(0, 0)])
        entries = make_entries(t, IndexVariant.SEGMENTED)
        assert len(entries) == 1
        assert entries[0].own_point_idx == (0,)
        assert entries[0].own_seg_idx == ()

    def test_full_owns_everything(self):
        t = Trajectory(1, [(0, 0), (1, 0), (2, 0)])
        (e,) = make_entries(t, IndexVariant.FULL)
        assert e.own_point_idx == (0, 1, 2)
        assert e.own_seg_idx == (0, 1)
        assert len(e.placement_points) == 3

    @given(trajectories(min_points=1, max_points=8))
    def test_ownership_partition_property(self, t):
        for variant in (IndexVariant.SEGMENTED, IndexVariant.FULL):
            entries = make_entries(t, variant)
            pts = sorted(i for e in entries for i in e.own_point_idx)
            segs = sorted(i for e in entries for i in e.own_seg_idx)
            assert pts == list(range(t.n_points))
            assert segs == list(range(t.n_segments))

    def test_entry_ids_unique(self):
        t = Trajectory(5, [(0, 0), (1, 0), (2, 0)])
        entries = make_entries(t, IndexVariant.SEGMENTED)
        assert len({e.entry_id for e in entries}) == len(entries)


class TestEntryScoring:
    def test_endpoint_entry_score(self):
        t = Trajectory(1, [(0, 0), (100, 0)])
        (e,) = make_entries(t, IndexVariant.ENDPOINT)
        near_both = StopSet(np.array([[0.0, 1.0], [100.0, 1.0]]))
        near_one = StopSet(np.array([[0.0, 1.0]]))
        sp = spec(ServiceModel.ENDPOINT)
        assert e.score(near_both, sp) == 1.0
        assert e.score(near_one, sp) == 0.0

    def test_summed_entry_scores_equal_trajectory_score(self):
        """Entry scores over a partitioned trajectory reassemble S(u, f)."""
        t = Trajectory(1, [(0, 0), (10, 0), (20, 0), (35, 0)])
        stops = StopSet(np.array([[10.0, 2.0], [20.0, 2.0]]))
        for variant in (IndexVariant.SEGMENTED, IndexVariant.FULL):
            entries = make_entries(t, variant)
            for model in (ServiceModel.COUNT, ServiceModel.LENGTH):
                for norm in (True, False):
                    sp = spec(model, psi=5.0, normalize=norm)
                    total = sum(e.score(stops, sp) for e in entries)
                    assert total == pytest.approx(score_trajectory(t, stops, sp))

    def test_upper_bound_dominates_score(self):
        t = Trajectory(1, [(0, 0), (10, 0), (20, 0)])
        stops = StopSet(np.array([[5.0, 0.0]]))
        for variant in IndexVariant:
            entries = make_entries(t, variant)
            for model in ServiceModel:
                if model is ServiceModel.ENDPOINT and variant is IndexVariant.SEGMENTED:
                    continue
                for norm in (True, False):
                    sp = spec(model, psi=50.0, normalize=norm)
                    for e in entries:
                        assert e.score(stops, sp) <= e.upper_bound(sp) + 1e-12

    def test_matches_report_covered_owned_points(self):
        t = Trajectory(1, [(0, 0), (10, 0), (500, 0)])
        entries = make_entries(t, IndexVariant.SEGMENTED)
        stops = StopSet(np.array([[0.0, 1.0], [10.0, 1.0]]))
        got = sorted(i for e in entries for i in e.matches(stops, 5.0))
        assert got == [0, 0, 1, 1] or set(got) == {0, 1}

    def test_full_entry_matches_all_covered(self):
        t = Trajectory(1, [(0, 0), (10, 0), (500, 0)])
        (e,) = make_entries(t, IndexVariant.FULL)
        stops = StopSet(np.array([[0.0, 1.0], [500.0, 1.0]]))
        assert e.matches(stops, 5.0) == (0, 2)


class TestValidateSpec:
    def test_endpoint_on_segmented_rejected(self):
        with pytest.raises(QueryError):
            validate_spec_for_variant(
                spec(ServiceModel.ENDPOINT), IndexVariant.SEGMENTED, 2
            )

    def test_count_on_endpoint_multipoint_rejected(self):
        with pytest.raises(QueryError):
            validate_spec_for_variant(spec(ServiceModel.COUNT), IndexVariant.ENDPOINT, 3)

    def test_count_on_endpoint_two_point_allowed(self):
        validate_spec_for_variant(spec(ServiceModel.COUNT), IndexVariant.ENDPOINT, 2)

    def test_everything_allowed_on_full(self):
        for model in ServiceModel:
            validate_spec_for_variant(spec(model), IndexVariant.FULL, 10)


class TestSubBounds:
    def test_additivity(self):
        t1 = Trajectory(1, [(0, 0), (10, 0)])
        t2 = Trajectory(2, [(0, 0), (10, 0), (20, 0)])
        a, b, merged = SubBounds(), SubBounds(), SubBounds()
        for e in make_entries(t1, IndexVariant.FULL):
            a.add_entry(e)
            merged.add_entry(e)
        for e in make_entries(t2, IndexVariant.FULL):
            b.add_entry(e)
            merged.add_entry(e)
        combined = SubBounds()
        combined.add(a)
        combined.add(b)
        for sp in (
            spec(ServiceModel.ENDPOINT),
            spec(ServiceModel.COUNT),
            spec(ServiceModel.COUNT, normalize=True),
            spec(ServiceModel.LENGTH),
            spec(ServiceModel.LENGTH, normalize=True),
        ):
            assert combined.value_for(sp) == pytest.approx(merged.value_for(sp))

    def test_normalized_bounds_are_one_per_trajectory(self):
        t = Trajectory(1, [(0, 0), (10, 0), (30, 0)])
        sub = SubBounds()
        for e in make_entries(t, IndexVariant.SEGMENTED):
            sub.add_entry(e)
        assert sub.value_for(spec(ServiceModel.COUNT, normalize=True)) == pytest.approx(1.0)
        assert sub.value_for(spec(ServiceModel.LENGTH, normalize=True)) == pytest.approx(1.0)

    def test_raw_bounds_count_units(self):
        t = Trajectory(1, [(0, 0), (3, 4), (6, 8)])
        sub = SubBounds()
        for e in make_entries(t, IndexVariant.FULL):
            sub.add_entry(e)
        assert sub.value_for(spec(ServiceModel.COUNT)) == 3.0
        assert sub.value_for(spec(ServiceModel.LENGTH)) == pytest.approx(10.0)
        assert sub.value_for(spec(ServiceModel.ENDPOINT)) == 1.0
