"""Tests for the benchmark harness (workload factory, scaling, timing)."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    DEFAULTS,
    PAPER_PARAMETERS,
    Timer,
    WorkloadFactory,
    _Defaults,
    bench_scale,
    parse_runtime_spec,
    scaled,
    scaling_tag,
    tag_scaling_claim,
    time_call,
)
from repro.core.config import (
    SHARDS_AUTO,
    ExecutionPolicy,
    IndexVariant,
    ProximityBackend,
)
from repro.core.service import ServiceModel


TINY = _Defaults(
    users_per_day=60,
    day_sweep=(0.5, 1.0),
    n_stops=8,
    stop_sweep=(4, 8),
    n_facilities=4,
    facility_sweep=(2, 4),
    k=2,
    k_sweep=(1, 2),
    psi=400.0,
    beta=8,
    city_seed=3,
    city_size=3_000.0,
)


@pytest.fixture(scope="module")
def tiny_factory():
    return WorkloadFactory(TINY)


class TestScaling:
    def test_default_scale_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0
        assert scaled(100) == 100

    def test_scale_env_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5
        assert scaled(100) == 250

    def test_bad_scale_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "lots")
        assert bench_scale() == 1.0
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-3")
        assert bench_scale() == 1.0

    def test_scaled_is_at_least_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0001")
        assert scaled(5) == 1


class TestPaperParameters:
    def test_table3_rows_present(self):
        names = {row.name for row in PAPER_PARAMETERS}
        assert {"n_trajectories", "n_stops", "n_facilities", "k"} <= names

    def test_paper_ranges_match_table3(self):
        rows = {row.name: row for row in PAPER_PARAMETERS}
        assert rows["n_stops"].paper_range == (8, 16, 32, 64, 128, 256, 512)
        assert rows["k"].paper_range == (4, 8, 16, 32)
        assert rows["n_trajectories"].paper_range[-1] == 1_032_637


class TestWorkloadFactory:
    def test_datasets_are_memoised(self, tiny_factory):
        a = tiny_factory.taxi_users(1.0)
        b = tiny_factory.taxi_users(1.0)
        assert a is b

    def test_day_scaling(self, tiny_factory):
        half = tiny_factory.taxi_users(0.5)
        full = tiny_factory.taxi_users(1.0)
        assert len(half) == 30 and len(full) == 60

    def test_facilities_keyed_by_stops(self, tiny_factory):
        a = tiny_factory.facilities(4, 8)
        b = tiny_factory.facilities(4, 4)
        assert a is not b
        assert all(f.n_stops == 8 for f in a)
        assert all(f.n_stops == 4 for f in b)

    def test_trees_are_memoised_per_config(self, tiny_factory):
        users = tiny_factory.taxi_users(1.0)
        t1 = tiny_factory.tq_tree(users, use_zorder=True)
        t2 = tiny_factory.tq_tree(users, use_zorder=True)
        t3 = tiny_factory.tq_tree(users, use_zorder=False)
        assert t1 is t2
        assert t1 is not t3

    def test_variant_trees(self, tiny_factory):
        users = tiny_factory.checkin_users(20)
        seg = tiny_factory.tq_tree(users, variant=IndexVariant.SEGMENTED)
        full = tiny_factory.tq_tree(users, variant=IndexVariant.FULL)
        assert seg.config.variant is IndexVariant.SEGMENTED
        assert full.config.variant is IndexVariant.FULL

    def test_baseline_memoised(self, tiny_factory):
        users = tiny_factory.taxi_users(1.0)
        assert tiny_factory.baseline(users) is tiny_factory.baseline(users)

    def test_spec_normalisation_convention(self, tiny_factory):
        assert tiny_factory.spec(ServiceModel.ENDPOINT).normalize is False
        assert tiny_factory.spec(ServiceModel.COUNT).normalize is True

    def test_all_users_inside_city(self, tiny_factory):
        for users in (
            tiny_factory.taxi_users(1.0),
            tiny_factory.checkin_users(15),
            tiny_factory.geolife_users(5),
        ):
            for u in users:
                for p in u.points:
                    assert tiny_factory.city.bounds.contains_point(p)

    def test_factory_not_runtime_aware_by_default(self, tiny_factory):
        assert tiny_factory.query_runtime() is None

    def test_runtime_aware_factory_hands_out_fresh_runtimes(self):
        cfg = parse_runtime_spec("serial:2")
        factory = WorkloadFactory(TINY, runtime_config=cfg)
        rt1 = factory.query_runtime()
        rt2 = factory.query_runtime()
        try:
            assert rt1 is not None and rt2 is not None
            assert rt1 is not rt2  # fresh caches per sweep leg
            assert rt1.config is cfg
        finally:
            rt1.close()
            rt2.close()


class TestParseRuntimeSpec:
    def test_policy_only(self):
        cfg = parse_runtime_spec("processes")
        assert cfg.policy is ExecutionPolicy.PROCESSES
        assert cfg.shards == SHARDS_AUTO
        assert cfg.max_workers is None
        assert cfg.backend is ProximityBackend.AUTO

    def test_full_spec(self):
        cfg = parse_runtime_spec("threads:7:2")
        assert cfg.policy is ExecutionPolicy.THREADS
        assert cfg.shards == 7
        assert cfg.max_workers == 2

    def test_auto_shards_keyword(self):
        assert parse_runtime_spec("serial:auto").shards == SHARDS_AUTO

    def test_bad_specs_raise(self):
        from repro.core.errors import QueryError

        with pytest.raises(ValueError):
            parse_runtime_spec("  ")
        with pytest.raises(ValueError):
            parse_runtime_spec("threads:1:2:3")
        with pytest.raises(ValueError):
            parse_runtime_spec("processes::4")  # empty field is a typo
        with pytest.raises(QueryError):
            parse_runtime_spec("fibers")


class TestTiming:
    def test_timer_measures(self):
        with Timer() as t:
            sum(range(10_000))
        assert t.seconds >= 0.0

    def test_time_call_returns_result_and_best(self):
        calls = []

        def fn():
            calls.append(1)
            return "x"

        result, seconds = time_call(fn, repeats=3)
        assert result == "x"
        assert len(calls) == 3
        assert seconds >= 0.0

    def test_defaults_sanity(self):
        assert DEFAULTS.users_per_day > 0
        assert DEFAULTS.k in DEFAULTS.k_sweep
        assert DEFAULTS.n_stops in DEFAULTS.stop_sweep


class TestScalingTag:
    """Concurrency speedup claims must self-identify the hardware that
    can back them: on a 1-CPU host the executors timeshare one core,
    so ratios certify parity and bounded overhead, never scaling."""

    def test_single_cpu_is_parity_only(self):
        assert scaling_tag({"cpu_count": 1}) == "parity-only"
        assert scaling_tag({"cpu_count": 0}) == "parity-only"
        assert scaling_tag({"cpu_count": None}) == "parity-only"
        assert scaling_tag({}) == "parity-only"
        assert scaling_tag({"cpu_count": "garbage"}) == "parity-only"

    def test_multi_cpu_is_measured(self):
        assert scaling_tag({"cpu_count": 2}) == "measured"
        assert scaling_tag({"cpu_count": 64}) == "measured"

    def test_default_host_is_the_live_machine(self):
        import os

        expected = "measured" if (os.cpu_count() or 1) > 1 else "parity-only"
        assert scaling_tag() == expected

    def test_tag_stamps_claim_and_note(self):
        claim = tag_scaling_claim({"speedup": 1.1}, host={"cpu_count": 1})
        assert claim["scaling"] == "parity-only"
        assert "1-CPU host" in claim["scaling_note"]
        assert claim["speedup"] == 1.1  # untouched

    def test_measured_claim_carries_no_note(self):
        claim = {"speedup": 3.7, "scaling_note": "stale"}
        tagged = tag_scaling_claim(claim, host={"cpu_count": 8})
        assert tagged["scaling"] == "measured"
        assert "scaling_note" not in tagged
