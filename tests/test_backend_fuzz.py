"""Randomized cross-backend differential fuzz.

Every proximity backend is a *work profile*, never an answer profile:
``DENSE``, ``GRID`` (at every shard count), and ``CELLSTRING`` must
return bit-identical masks for identical inputs, and their
:class:`~repro.core.stats.QueryStats` accounting must be exactly
additive — probing a block in chunks and merging the per-chunk stats
must equal one unchunked run, because that is the invariant the
sharded fan-out, the cellstring fan-out, and the runtime's service
totals all lean on.

Seeded ``numpy`` fuzz rather than Hypothesis: the trials sweep stop
counts across the AUTO thresholds, radii from zero to world-spanning,
probe coordinates far outside the stop extent, and snapped coordinates
that manufacture exact ``dist == psi`` ties.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ProximityBackend,
    QueryRuntime,
    QueryStats,
    RuntimeConfig,
    StopSet,
)

BACKENDS = (
    ProximityBackend.DENSE,
    ProximityBackend.GRID,
    ProximityBackend.CELLSTRING,
)
SHARD_COUNTS = (1, 2, 7)

#: Stop counts straddling AUTO_MIN_STOPS (48); radii from zero through
#: world-spanning; probes drawn wider than the stop extent.
_STOP_COUNTS = (1, 2, 7, 47, 48, 120)
_PSIS = (0.0, 0.25, 3.0, 40.0, 900.0)


def _random_case(rng: np.random.Generator, n_stops: int):
    # snap to 0.25 so exact dist == psi ties actually occur
    stops = np.round(rng.uniform(0.0, 200.0, size=(n_stops, 2)) * 4.0) / 4.0
    n_probe = int(rng.integers(1, 80))
    probe = np.round(rng.uniform(-50.0, 250.0, size=(n_probe, 2)) * 4.0) / 4.0
    return stops, probe


def _runtimes():
    """One runtime per (backend, shard count) execution shape."""
    out = []
    for backend in BACKENDS:
        for shards in SHARD_COUNTS:
            cfg = RuntimeConfig(backend=backend, shards=shards, max_workers=0)
            out.append(QueryRuntime(cfg))
    return out


@pytest.mark.parametrize("seed", range(6))
def test_all_backends_bit_identical(seed):
    rng = np.random.default_rng(1000 + seed)
    runtimes = _runtimes()
    try:
        for n_stops in _STOP_COUNTS:
            stops, probe = _random_case(rng, n_stops)
            for psi in _PSIS:
                expected = StopSet(stops).covered_mask(probe, psi)
                for rt in runtimes:
                    mask = rt.probe_mask(stops, probe, psi)
                    assert np.array_equal(expected, mask), (
                        f"backend={rt.config.backend.value} "
                        f"shards={rt.config.shards} n_stops={n_stops} psi={psi}"
                    )
    finally:
        for rt in runtimes:
            rt.close()


@pytest.mark.parametrize("seed", range(3))
def test_stats_merge_is_chunk_invariant(seed):
    """Chunked probes merge to exactly the unchunked totals, for every
    backend — the additivity every fan-out path depends on."""
    rng = np.random.default_rng(2000 + seed)
    runtimes = _runtimes()
    try:
        for n_stops in (7, 48, 120):
            stops, _ = _random_case(rng, n_stops)
            probe = np.round(
                rng.uniform(-50.0, 250.0, size=(91, 2)) * 4.0
            ) / 4.0
            for psi in (0.0, 3.0, 40.0):
                for rt in runtimes:
                    dressed = rt.stop_set(StopSet(stops), psi)
                    whole = QueryStats()
                    full_mask = dressed.covered_mask(probe, psi, whole)
                    merged = QueryStats()
                    parts = []
                    for chunk in np.array_split(probe, 4):
                        local = QueryStats()
                        parts.append(dressed.covered_mask(chunk, psi, local))
                        merged.merge(local)
                    assert np.array_equal(full_mask, np.concatenate(parts))
                    assert merged == whole, (
                        f"backend={rt.config.backend.value} "
                        f"shards={rt.config.shards} n_stops={n_stops} psi={psi}"
                    )
    finally:
        for rt in runtimes:
            rt.close()


@pytest.mark.parametrize("seed", range(3))
def test_repeat_probes_deterministic(seed):
    """Two identical probes through one runtime agree exactly — mask and
    stats — even though the second ride memoized builds."""
    rng = np.random.default_rng(3000 + seed)
    stops, probe = _random_case(rng, 96)
    for backend in BACKENDS:
        with QueryRuntime(backend=backend) as rt:
            dressed = rt.stop_set(StopSet(stops), 12.0)
            s1, s2 = QueryStats(), QueryStats()
            m1 = dressed.covered_mask(probe, 12.0, s1)
            m2 = dressed.covered_mask(probe, 12.0, s2)
            assert np.array_equal(m1, m2)
            assert s1 == s2


def test_covers_point_agrees_across_backends():
    rng = np.random.default_rng(4000)
    stops, probe = _random_case(rng, 64)
    from repro.core.geometry import Point

    points = [Point(float(x), float(y)) for x, y in probe[:25]]
    for psi in (0.0, 3.0, 40.0):
        dense = StopSet(stops)
        expected = [dense.covers_point(p, psi) for p in points]
        for backend in BACKENDS:
            with QueryRuntime(backend=backend) as rt:
                dressed = rt.stop_set(StopSet(stops), psi)
                got = [dressed.covers_point(p, psi) for p in points]
                assert got == expected, backend.value
