"""The QueryRuntime execution layer: one object must reproduce exactly
what the threaded-through ``backend=`` / ``cache=`` parameters did, and
every runtime policy (dense, gridded, sharded, fan-out) must be
answer-invisible — ``==`` against the plain dense path throughout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BatchQueryEngine,
    CoverageCache,
    ProximityBackend,
    QueryRuntime,
    QueryStats,
    RuntimeConfig,
    ServiceModel,
    ServiceSpec,
    ShardedStopSet,
    StopSet,
    TQTree,
    TQTreeConfig,
    auto_shard_count,
    brute_force_service,
    evaluate_service,
    exact_max_k_coverage,
    genetic_max_k_coverage,
    maxkcov_tq,
    top_k_facilities,
)
from repro.core.errors import QueryError
from repro.engine.grid import GriddedStopSet
from repro.queries.maxkcov import tq_match_fn
from repro.runtime import coerce_runtime

from .strategies import WORLD

ALL_MODELS = (ServiceModel.ENDPOINT, ServiceModel.COUNT, ServiceModel.LENGTH)


def _runtime(backend=ProximityBackend.AUTO, shards=0, max_workers=0, **kw):
    return QueryRuntime(
        RuntimeConfig(backend=backend, shards=shards, max_workers=max_workers),
        **kw,
    )


class TestStopSetDressing:
    def test_dense_backend_returns_plain(self):
        rt = _runtime(ProximityBackend.DENSE)
        stops = StopSet(np.random.default_rng(0).uniform(0, 100, (200, 2)))
        assert rt.stop_set(stops, 10.0) is stops

    def test_auto_keeps_tiny_sets_dense(self):
        rt = _runtime(ProximityBackend.AUTO)
        stops = StopSet(np.random.default_rng(0).uniform(0, 100, (8, 2)))
        dressed = rt.stop_set(stops, 10.0)
        assert type(dressed) is StopSet

    def test_grid_backend_grids_unsharded(self):
        rt = _runtime(ProximityBackend.GRID, shards=1)
        stops = StopSet(np.random.default_rng(0).uniform(0, 100, (8, 2)))
        assert isinstance(rt.stop_set(stops, 10.0), GriddedStopSet)

    def test_explicit_shard_count_shards(self):
        rt = _runtime(ProximityBackend.GRID, shards=3)
        stops = StopSet(np.random.default_rng(0).uniform(0, 100, (64, 2)))
        dressed = rt.stop_set(stops, 10.0)
        assert isinstance(dressed, ShardedStopSet)
        assert dressed.shards == 3

    def test_auto_shards_resolve_from_stop_count(self):
        rt = _runtime(ProximityBackend.AUTO, shards=0)
        small = StopSet(np.random.default_rng(0).uniform(0, 500, (200, 2)))
        large = StopSet(np.random.default_rng(1).uniform(0, 500, (4_000, 2)))
        assert isinstance(rt.stop_set(small, 10.0), GriddedStopSet)
        assert isinstance(rt.stop_set(large, 10.0), ShardedStopSet)
        assert auto_shard_count(200) == 1

    def test_cellstring_backend_always_dresses(self):
        from repro import CellstringStopSet

        rt = _runtime(ProximityBackend.CELLSTRING)
        for n in (1, 8, 200):
            stops = StopSet(np.random.default_rng(n).uniform(0, 100, (n, 2)))
            dressed = rt.stop_set(stops, 10.0)
            assert isinstance(dressed, CellstringStopSet)
            assert dressed.min_stops == 1

    def test_auto_picks_cellstring_for_huge_sets(self):
        from repro import CellstringStopSet
        from repro.engine import AUTO_CELLSTRING_MIN_STOPS

        rt = _runtime(ProximityBackend.AUTO)
        huge = StopSet(
            np.random.default_rng(2).uniform(
                0, 500, (AUTO_CELLSTRING_MIN_STOPS, 2)
            )
        )
        assert isinstance(rt.stop_set(huge, 10.0), CellstringStopSet)

    def test_auto_thresholds_consistent_with_backend_stops(self):
        """The lazy runtime dressing and the sync ``backend_stops`` path
        must pick the same tier at every threshold boundary — a probe
        routed either way does the same class of work."""
        from repro import CellstringStopSet, backend_stops
        from repro.engine import AUTO_CELLSTRING_MIN_STOPS
        from repro.engine.grid import AUTO_MIN_STOPS

        rng = np.random.default_rng(3)
        counts = (
            AUTO_MIN_STOPS - 1,
            AUTO_MIN_STOPS,
            AUTO_CELLSTRING_MIN_STOPS - 1,
            AUTO_CELLSTRING_MIN_STOPS,
        )
        rt = _runtime(ProximityBackend.AUTO, shards=1)
        for n in counts:
            stops = StopSet(rng.uniform(0, 500, (n, 2)))
            lazy = rt.stop_set(stops, 10.0)
            sync = backend_stops(StopSet(stops.coords), 10.0, ProximityBackend.AUTO)
            if n < AUTO_MIN_STOPS:
                # both paths do dense work: the runtime returns the plain
                # set, the sync path a lazy wrapper whose grid never builds
                assert type(lazy) is StopSet
                assert isinstance(sync, GriddedStopSet)
                assert sync._grid_for(10.0) is None
            elif n < AUTO_CELLSTRING_MIN_STOPS:
                assert isinstance(lazy, GriddedStopSet)
                assert isinstance(sync, GriddedStopSet)
                assert not isinstance(lazy, CellstringStopSet)
            else:
                assert isinstance(lazy, CellstringStopSet)
                assert isinstance(sync, CellstringStopSet)

    def test_dressed_cellstring_passes_through(self):
        from repro import CellstringStopSet

        rt = _runtime(ProximityBackend.AUTO)
        coords = np.random.default_rng(4).uniform(0, 100, (64, 2))
        dressed = CellstringStopSet(coords, 10.0)
        assert rt.stop_set(dressed, 10.0) is dressed
        assert auto_shard_count(4_000) >= 2

    def test_already_dressed_sets_pass_through(self):
        rt = _runtime(ProximityBackend.GRID, shards=3)
        sharded = ShardedStopSet(np.zeros((4, 2)), 1.0)
        gridded = GriddedStopSet(np.zeros((4, 2)), 1.0)
        assert rt.stop_set(sharded, 1.0) is sharded
        assert rt.stop_set(gridded, 1.0) is gridded

    def test_sharded_sets_share_the_runtime_store(self):
        rt = _runtime(ProximityBackend.GRID, shards=2)
        coords = np.random.default_rng(2).uniform(0, 500, (128, 2))
        a = rt.stop_set(StopSet(coords), 10.0)
        b = rt.stop_set(StopSet(coords.copy()), 10.0)
        probe = np.random.default_rng(3).uniform(0, 500, (64, 2))
        np.testing.assert_array_equal(
            a.covered_mask(probe, 10.0), b.covered_mask(probe, 10.0)
        )
        assert rt.shard_store.grid_hits >= 1


class TestRuntimeRoutedQueries:
    """Every query algorithm routed through a runtime must equal the
    plain dense path exactly, for every policy."""

    POLICIES = (
        RuntimeConfig(backend=ProximityBackend.DENSE),
        RuntimeConfig(backend=ProximityBackend.GRID, shards=1, max_workers=0),
        RuntimeConfig(backend=ProximityBackend.GRID, shards=2, max_workers=0),
        RuntimeConfig(backend=ProximityBackend.GRID, shards=7, max_workers=2),
        RuntimeConfig(backend=ProximityBackend.AUTO),
    )

    def test_evaluate_service_identical(self, taxi_users, facilities):
        tree = TQTree.build(taxi_users, TQTreeConfig(beta=16))
        for model in ALL_MODELS:
            spec = ServiceSpec(model, psi=400.0)
            for f in facilities[:6]:
                plain = evaluate_service(tree, f, spec)
                oracle = brute_force_service(taxi_users, f, spec)
                assert plain == oracle
                for config in self.POLICIES:
                    with QueryRuntime(config) as rt:
                        assert evaluate_service(tree, f, spec, runtime=rt) == plain

    def test_topk_and_maxkcov_identical(self, taxi_users, facilities):
        tree = TQTree.build(taxi_users, TQTreeConfig(beta=16))
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=400.0)
        plain_topk = top_k_facilities(tree, facilities, 4, spec)
        plain_cov = maxkcov_tq(tree, facilities, 3, spec)
        for config in self.POLICIES:
            with QueryRuntime(config) as rt:
                fast_topk = top_k_facilities(tree, facilities, 4, spec, runtime=rt)
                fast_cov = maxkcov_tq(tree, facilities, 3, spec, runtime=rt)
            assert fast_topk.ranking == plain_topk.ranking
            assert fast_cov.facility_ids() == plain_cov.facility_ids()
            assert fast_cov.combined_service == plain_cov.combined_service
            assert fast_cov.users_fully_served == plain_cov.users_fully_served

    def test_exact_and_genetic_share_runtime_cache(self, taxi_users, facilities):
        tree = TQTree.build(taxi_users, TQTreeConfig(beta=16))
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=400.0)
        subset = facilities[:5]
        plain_fn = tq_match_fn(tree, spec)
        plain_exact = exact_max_k_coverage(taxi_users, subset, 2, spec, plain_fn)
        plain_gen = genetic_max_k_coverage(taxi_users, subset, 2, spec, plain_fn)
        with _runtime(ProximityBackend.GRID, shards=2) as rt:
            fn = tq_match_fn(tree, spec, runtime=rt)
            fast_exact = exact_max_k_coverage(
                taxi_users, subset, 2, spec, fn, runtime=rt
            )
            fast_gen = genetic_max_k_coverage(
                taxi_users, subset, 2, spec, fn, runtime=rt
            )
            assert fast_exact.combined_service == plain_exact.combined_service
            assert fast_exact.facility_ids() == plain_exact.facility_ids()
            assert fast_gen.combined_service == plain_gen.combined_service
            assert fast_gen.facility_ids() == plain_gen.facility_ids()
            # the genetic run reused the exact run's match sets
            assert rt.cache.hits > 0

    def test_batch_engine_runtime_identical(self, taxi_users, facilities):
        spec_grid = [
            (f, ServiceSpec(model, psi=400.0))
            for f in facilities[:4]
            for model in ALL_MODELS
        ]
        plain = BatchQueryEngine(taxi_users).run(spec_grid)
        for config in self.POLICIES:
            with QueryRuntime(config) as rt:
                engine = BatchQueryEngine(taxi_users, runtime=rt)
                got = engine.run(spec_grid)
            assert got.scores == plain.scores


class TestStatsAccrual:
    def test_evaluate_accrues_into_runtime_total(self, taxi_users, facilities):
        tree = TQTree.build(taxi_users, TQTreeConfig(beta=16))
        spec = ServiceSpec(ServiceModel.COUNT, psi=400.0)
        rt = _runtime(ProximityBackend.GRID, shards=2)
        explicit = QueryStats()
        evaluate_service(tree, facilities[0], spec, stats=explicit, runtime=rt)
        assert rt.stats == explicit  # same single evaluation, both views
        assert rt.stats.nodes_visited > 0
        evaluate_service(tree, facilities[1], spec, runtime=rt)
        assert rt.stats.nodes_visited > explicit.nodes_visited  # keeps growing

    def test_topk_result_stats_match_runtime_delta(self, taxi_users, facilities):
        tree = TQTree.build(taxi_users, TQTreeConfig(beta=16))
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=400.0)
        rt = _runtime(ProximityBackend.GRID)
        result = top_k_facilities(tree, facilities, 3, spec, runtime=rt)
        assert rt.stats == result.stats
        total = rt.reset_stats()
        assert total == result.stats
        assert rt.stats == QueryStats()

    def test_batch_engine_accrues(self, taxi_users, facilities):
        rt = _runtime(ProximityBackend.GRID)
        engine = BatchQueryEngine(taxi_users, runtime=rt)
        spec = ServiceSpec(ServiceModel.COUNT, psi=400.0)
        result = engine.run([(f, spec) for f in facilities[:3]])
        assert rt.stats == result.stats

    def test_per_shard_stats_merge_matches_unsharded_totals(
        self, taxi_users, facilities
    ):
        """A sharded runtime run accrues exactly the totals an unsharded
        grid runtime accrues for the same queries."""
        spec = ServiceSpec(ServiceModel.COUNT, psi=400.0)
        requests = [(f, spec) for f in facilities[:6]]
        rt_grid = _runtime(ProximityBackend.GRID, shards=1)
        rt_sharded = _runtime(ProximityBackend.GRID, shards=7)
        grid_result = BatchQueryEngine(taxi_users, runtime=rt_grid).run(requests)
        shard_result = BatchQueryEngine(taxi_users, runtime=rt_sharded).run(requests)
        assert grid_result.scores == shard_result.scores
        assert rt_sharded.stats == rt_grid.stats


class TestLegacyShims:
    def test_backend_cache_keywords_warn_and_match(self, taxi_users, facilities):
        tree = TQTree.build(taxi_users, TQTreeConfig(beta=16))
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=400.0)
        plain = evaluate_service(tree, facilities[0], spec)
        cache = CoverageCache()
        with pytest.warns(DeprecationWarning):
            legacy = evaluate_service(
                tree, facilities[0], spec,
                backend=ProximityBackend.GRID, cache=cache,
            )
        assert legacy == plain
        assert len(cache) > 0  # the legacy cache object really was used

    def test_runtime_plus_legacy_keywords_rejected(self, taxi_users, facilities):
        tree = TQTree.build(taxi_users, TQTreeConfig(beta=16))
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=400.0)
        rt = _runtime()
        with pytest.raises(QueryError):
            evaluate_service(
                tree, facilities[0], spec,
                backend=ProximityBackend.GRID, runtime=rt,
            )

    def test_coerce_none_is_none(self):
        assert coerce_runtime(None, None, None) is None

    def test_legacy_backend_none_with_cache_stays_dense(self):
        with pytest.warns(DeprecationWarning):
            rt = coerce_runtime(None, None, CoverageCache())
        stops = StopSet(np.random.default_rng(0).uniform(0, 100, (200, 2)))
        assert rt.stop_set(stops, 10.0) is stops  # old backend=None semantics


class TestRuntimeLifecycle:
    def test_config_validation(self):
        with pytest.raises(QueryError):
            RuntimeConfig(backend="grid")  # not a ProximityBackend
        with pytest.raises(QueryError):
            RuntimeConfig(shards=-1)
        with pytest.raises(QueryError):
            RuntimeConfig(max_workers=-2)
        with pytest.raises(QueryError):
            QueryRuntime(backend="grid")

    def test_executor_lifecycle(self):
        rt = QueryRuntime(RuntimeConfig(max_workers=2))
        assert rt.executor is not None
        rt.close()
        assert rt.executor is None  # closed runtimes stay serial
        serial = QueryRuntime(RuntimeConfig(max_workers=0))
        assert serial.executor is None

    def test_stop_sets_survive_runtime_close(self):
        """A stop set dressed before close() must degrade to serial
        probing, not schedule on the shut-down pool."""
        rng = np.random.default_rng(23)
        coords = rng.uniform(0, 500, (128, 2))
        probe = rng.uniform(0, 500, (64, 2))
        rt = QueryRuntime(
            RuntimeConfig(backend=ProximityBackend.GRID, shards=4, max_workers=2)
        )
        dressed = rt.stop_set(StopSet(coords), 10.0)
        before = dressed.covered_mask(probe, 10.0)
        rt.close()
        after = dressed.covered_mask(probe, 10.0)  # must not raise
        np.testing.assert_array_equal(before, after)

    def test_batch_engine_rejects_runtime_plus_legacy_keywords(self, taxi_users):
        rt = _runtime()
        with pytest.raises(QueryError):
            BatchQueryEngine(taxi_users, backend=ProximityBackend.GRID, runtime=rt)
        with pytest.raises(QueryError):
            BatchQueryEngine(taxi_users, cache=CoverageCache(), runtime=rt)

    def test_shared_stats_object(self):
        shared = QueryStats()
        rt_a = _runtime(stats=shared)
        rt_b = _runtime(stats=shared)
        rt_a.accrue(QueryStats(points_scanned=3))
        rt_b.accrue(QueryStats(points_scanned=4))
        assert shared.points_scanned == 7
