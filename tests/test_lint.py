"""``repro.lint`` — the framework itself, and the tree it guards.

Three layers of coverage:

* fixture tests — each rule L1–L5 gets a tiny deliberately-bad package
  proving it fires with the exact rule id and line, and a clean twin
  proving it stays quiet (so a refactor of a rule cannot silently turn
  it into a no-op);
* the real tree — the full pass over the installed ``src/repro`` must
  report zero findings against the shipped (empty) baseline, which is
  what makes every architectural invariant self-enforcing in tier-1;
* mutation tests — the acceptance-criteria regressions: deleting a
  stats field from a wire codec table, or adding a ``queries`` →
  ``engine`` import, must each produce a finding.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.lint import (
    REPRO_CONFIG,
    BlockingConfig,
    CodecPairing,
    LayerConfig,
    LintConfig,
    LintConfigError,
    SourceIndex,
    format_findings,
    run_lint,
    run_rules,
)

REPRO_ROOT = Path(repro.__file__).parent
REPO_ROOT = REPRO_ROOT.parent.parent
BASELINE = REPO_ROOT / "lint_baseline.json"


def write_pkg(tmp_path: Path, files: dict) -> Path:
    """Materialise ``files`` (relative path -> source) as package ``pkg``."""
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").write_text("")
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.parent != root and not (path.parent / "__init__.py").exists():
            (path.parent / "__init__.py").write_text("")
        path.write_text(textwrap.dedent(source))
    return root


TWO_LAYERS = LayerConfig(
    assignments=(
        ("pkg.low", "low"),
        ("pkg.high", "high"),
        ("pkg", "root"),
    ),
    allowed={"low": (), "high": ("low",), "root": ("low", "high")},
    banned_names={"low": ("ForbiddenKnob",)},
)


def lint_pkg(root: Path, config: LintConfig, select=None):
    return run_rules(SourceIndex(root), config, select=select)


# ----------------------------------------------------------------------
# L1 — layer DAG
# ----------------------------------------------------------------------
class TestLayerRule:
    def test_upward_import_fires_with_line(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "low.py": """\
                    import os

                    from .high import helper
                    """,
                "high.py": "def helper():\n    return 1\n",
            },
        )
        findings = lint_pkg(root, LintConfig(layer=TWO_LAYERS), select=["L1"])
        assert [(f.rule, f.path, f.line) for f in findings] == [
            ("L1", "pkg/low.py", 3)
        ]
        assert "may not import layer 'high'" in findings[0].message
        assert findings[0].hint

    def test_deferred_import_is_still_an_edge(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "low.py": """\
                    def f():
                        from .high import helper
                        return helper()
                    """,
                "high.py": "def helper():\n    return 1\n",
            },
        )
        findings = lint_pkg(root, LintConfig(layer=TWO_LAYERS), select=["L1"])
        assert [(f.rule, f.line) for f in findings] == [("L1", 2)]
        assert "deferred import" in findings[0].message

    def test_banned_symbol_fires_even_from_allowed_layer(self, tmp_path):
        # the import edge itself (low -> low) is fine; the symbol is not
        root = write_pkg(
            tmp_path,
            {
                "low/a.py": "from .b import ForbiddenKnob\n",
                "low/b.py": "ForbiddenKnob = 1\n",
                "high.py": "",
            },
        )
        findings = lint_pkg(root, LintConfig(layer=TWO_LAYERS), select=["L1"])
        assert [(f.rule, f.path, f.line) for f in findings] == [
            ("L1", "pkg/low/a.py", 1)
        ]
        assert "ForbiddenKnob" in findings[0].message

    def test_downward_and_external_imports_are_clean(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "low.py": "import os\nimport numpy\n",
                "high.py": "from .low import x\nfrom . import low\n",
            },
        )
        assert lint_pkg(root, LintConfig(layer=TWO_LAYERS), select=["L1"]) == []

    def test_package_init_may_reexport_its_subtree(self, tmp_path):
        # pkg/__init__.py importing pkg.high is aggregation, not an edge
        root = write_pkg(
            tmp_path,
            {"low.py": "", "high.py": "helper = 1\n"},
        )
        (root / "__init__.py").write_text("from .high import helper\n")
        cfg = LayerConfig(
            assignments=TWO_LAYERS.assignments,
            allowed={"low": (), "high": ("low",), "root": ()},
        )
        assert lint_pkg(root, LintConfig(layer=cfg), select=["L1"]) == []

    def test_unassigned_module_is_a_config_finding(self, tmp_path):
        root = write_pkg(tmp_path, {"low.py": "", "stray.py": ""})
        cfg = LayerConfig(
            assignments=(("pkg.low", "low"),), allowed={"low": ()}
        )
        findings = lint_pkg(root, LintConfig(layer=cfg), select=["L1"])
        assert {f.path for f in findings} == {"pkg/__init__.py", "pkg/stray.py"}
        assert all("not assigned" in f.message for f in findings)


# ----------------------------------------------------------------------
# L2 — asyncio blocking calls
# ----------------------------------------------------------------------
ASYNC_CFG = LintConfig(layer=TWO_LAYERS, blocking=BlockingConfig())


class TestBlockingRule:
    def test_time_sleep_in_async_def(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "high.py": """\
                    import time

                    async def handler():
                        time.sleep(1)
                    """,
                "low.py": "",
            },
        )
        findings = lint_pkg(root, ASYNC_CFG, select=["L2"])
        assert [(f.rule, f.line) for f in findings] == [("L2", 4)]
        assert "time.sleep" in findings[0].message

    def test_blocking_socket_op_and_sync_open(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "high.py": """\
                    async def handler(sock, path):
                        data = sock.recv(1024)
                        with open(path) as fh:
                            return fh.read(), data
                    """,
                "low.py": "",
            },
        )
        findings = lint_pkg(root, ASYNC_CFG, select=["L2"])
        assert [(f.rule, f.line) for f in findings] == [("L2", 2), ("L2", 3)]

    def test_direct_core_execution_on_loop(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "high.py": """\
                    from .low import evaluate_core

                    async def handler(tree, f, spec):
                        return evaluate_core(tree, f, spec)
                    """,
                "low.py": "def evaluate_core(*a):\n    return 0\n",
            },
        )
        findings = lint_pkg(root, ASYNC_CFG, select=["L2"])
        assert [(f.rule, f.line) for f in findings] == [("L2", 4)]
        assert "run_in_executor" in findings[0].hint

    def test_thread_lock_acquire_and_hold_across_await(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "high.py": """\
                    import threading

                    class Service:
                        def __init__(self):
                            self._lock = threading.Lock()

                        async def bad_acquire(self):
                            self._lock.acquire()

                        async def bad_hold(self, fut):
                            with self._lock:
                                await fut
                    """,
                "low.py": "",
            },
        )
        findings = lint_pkg(root, ASYNC_CFG, select=["L2"])
        assert [(f.rule, f.line) for f in findings] == [("L2", 8), ("L2", 12)]
        assert "acquire" in findings[0].message
        assert "across an await" in findings[1].message

    def test_bounded_lock_hold_and_executor_bridge_are_clean(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "high.py": """\
                    import asyncio
                    import threading

                    from .low import evaluate_core

                    class Service:
                        def __init__(self):
                            self._stats_lock = threading.Lock()
                            self._sem = asyncio.Semaphore(4)
                            self.count = 0

                        async def handler(self, loop, tree):
                            await self._sem.acquire()
                            with self._stats_lock:
                                self.count += 1
                            return await loop.run_in_executor(
                                None, evaluate_core, tree
                            )
                    """,
                "low.py": "def evaluate_core(*a):\n    return 0\n",
            },
        )
        assert lint_pkg(root, ASYNC_CFG, select=["L2"]) == []

    def test_sync_function_is_out_of_scope(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "high.py": """\
                    import time

                    def worker():
                        time.sleep(1)
                    """,
                "low.py": "",
            },
        )
        assert lint_pkg(root, ASYNC_CFG, select=["L2"]) == []


# ----------------------------------------------------------------------
# L3 — guarded-by discipline
# ----------------------------------------------------------------------
class TestGuardRule:
    def test_unguarded_write_fires(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "high.py": """\
                    import threading

                    class Counter:
                        def __init__(self):
                            self.hits = 0  # guarded-by: _lock
                            self._lock = threading.Lock()

                        def bump(self):
                            self.hits += 1
                    """,
                "low.py": "",
            },
        )
        findings = lint_pkg(
            root, LintConfig(layer=TWO_LAYERS), select=["L3"]
        )
        assert [(f.rule, f.line) for f in findings] == [("L3", 9)]
        assert "self.hits" in findings[0].message
        assert "with _lock" in findings[0].message

    def test_mutating_method_call_fires(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "high.py": """\
                    import threading

                    class Stats:
                        def __init__(self):
                            self.stats = {}  # guarded-by: _lock
                            self._lock = threading.Lock()

                        def accrue(self, delta):
                            self.stats.update(delta)
                    """,
                "low.py": "",
            },
        )
        findings = lint_pkg(
            root, LintConfig(layer=TWO_LAYERS), select=["L3"]
        )
        assert [(f.rule, f.line) for f in findings] == [("L3", 9)]
        assert ".update()" in findings[0].message

    def test_locked_write_and_requires_lock_are_clean(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "high.py": """\
                    import threading

                    class Counter:
                        def __init__(self):
                            self.hits = 0  # guarded-by: _lock
                            self._lock = threading.Lock()

                        def bump(self):
                            with self._lock:
                                self.hits += 1

                        def _bump_locked(self):  # requires-lock: _lock
                            self.hits += 1

                        def read(self):
                            with self._lock:
                                return self.hits
                    """,
                "low.py": "",
            },
        )
        assert lint_pkg(root, LintConfig(layer=TWO_LAYERS), select=["L3"]) == []

    def test_module_level_lock_guard(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "high.py": """\
                    import threading

                    _STATS_LOCK = threading.Lock()

                    class Runtime:
                        def __init__(self):
                            self.stats = 0  # guarded-by: _STATS_LOCK

                        def good(self, d):
                            with _STATS_LOCK:
                                self.stats += d

                        def bad(self, d):
                            self.stats += d
                    """,
                "low.py": "",
            },
        )
        findings = lint_pkg(
            root, LintConfig(layer=TWO_LAYERS), select=["L3"]
        )
        assert [(f.rule, f.line) for f in findings] == [("L3", 14)]


# ----------------------------------------------------------------------
# L4 — wire-codec completeness
# ----------------------------------------------------------------------
def codec_cfg(**kw) -> LintConfig:
    return LintConfig(
        layer=TWO_LAYERS, codecs=(CodecPairing(**kw),)
    )


class TestCodecRule:
    def test_missing_field_in_table(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "low.py": """\
                    from dataclasses import dataclass

                    @dataclass
                    class Rec:
                        a: int
                        b: int
                    """,
                "high.py": '_REC_FIELDS = ("a",)\n',
            },
        )
        cfg = codec_cfg(
            dataclass="pkg.low.Rec", tuple_name="pkg.high._REC_FIELDS"
        )
        findings = lint_pkg(root, cfg, select=["L4"])
        assert [(f.rule, f.path, f.line) for f in findings] == [
            ("L4", "pkg/high.py", 1)
        ]
        assert "Rec.b is missing" in findings[0].message

    def test_stale_table_entry_fires_too(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "low.py": """\
                    from dataclasses import dataclass

                    @dataclass
                    class Rec:
                        a: int
                    """,
                "high.py": '_REC_FIELDS = ("a", "gone")\n',
            },
        )
        cfg = codec_cfg(
            dataclass="pkg.low.Rec", tuple_name="pkg.high._REC_FIELDS"
        )
        findings = lint_pkg(root, cfg, select=["L4"])
        assert len(findings) == 1
        assert "'gone'" in findings[0].message

    def test_complete_table_and_fields_idiom_are_clean(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "low.py": """\
                    from dataclasses import dataclass

                    @dataclass
                    class Rec:
                        a: int
                        b: int
                    """,
                "high.py": """\
                    import dataclasses

                    from .low import Rec

                    _REC_FIELDS = ("a", "b")
                    _DYN_FIELDS = tuple(f.name for f in dataclasses.fields(Rec))
                    """,
            },
        )
        for table in ("_REC_FIELDS", "_DYN_FIELDS"):
            cfg = codec_cfg(
                dataclass="pkg.low.Rec", tuple_name=f"pkg.high.{table}"
            )
            assert lint_pkg(root, cfg, select=["L4"]) == []

    def test_function_pairing_with_aliases_and_exclude(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "low.py": """\
                    from dataclasses import dataclass

                    @dataclass
                    class Req:
                        tree: object
                        facility: object
                        local_only: bool
                    """,
                "high.py": """\
                    def decode(payload):
                        return payload["tree"], payload["facility_id"]
                    """,
            },
        )
        cfg = codec_cfg(
            dataclass="pkg.low.Req",
            functions=("pkg.high.decode",),
            aliases={"facility": ("facility_id",)},
            exclude=("local_only",),
        )
        assert lint_pkg(root, cfg, select=["L4"]) == []
        # without the exclude, the uncodable field is a finding
        cfg = codec_cfg(
            dataclass="pkg.low.Req",
            functions=("pkg.high.decode",),
            aliases={"facility": ("facility_id",)},
        )
        findings = lint_pkg(root, cfg, select=["L4"])
        assert len(findings) == 1
        assert "local_only" in findings[0].message

    def test_unknown_dataclass_is_config_error(self, tmp_path):
        root = write_pkg(tmp_path, {"low.py": "", "high.py": ""})
        cfg = codec_cfg(
            dataclass="pkg.low.Nope", tuple_name="pkg.high._NOPE"
        )
        with pytest.raises(LintConfigError):
            lint_pkg(root, cfg, select=["L4"])


# ----------------------------------------------------------------------
# L5 — resource lifecycle
# ----------------------------------------------------------------------
class TestLifecycleRule:
    def test_unclosed_shared_memory_fires(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "high.py": """\
                    from multiprocessing import shared_memory

                    def leak(n):
                        shm = shared_memory.SharedMemory(create=True, size=n)
                        shm.buf[0] = 1
                        return bytes(shm.buf)
                    """,
                "low.py": "",
            },
        )
        findings = lint_pkg(
            root, LintConfig(layer=TWO_LAYERS), select=["L5"]
        )
        assert [(f.rule, f.line) for f in findings] == [("L5", 4)]
        assert "SharedMemory(create=True)" in findings[0].message

    def test_straight_line_release_is_flagged_as_leak_on_raise(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "high.py": """\
                    def risky(path, data):
                        fh = open(path, "w")
                        fh.write(data)
                        fh.close()
                    """,
                "low.py": "",
            },
        )
        findings = lint_pkg(
            root, LintConfig(layer=TWO_LAYERS), select=["L5"]
        )
        assert [(f.rule, f.line) for f in findings] == [("L5", 2)]
        assert "straight-line" in findings[0].message

    def test_with_finally_and_class_cleanup_are_clean(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "high.py": """\
                    import numpy as np
                    from multiprocessing import shared_memory

                    def scoped(path):
                        with open(path) as fh:
                            return fh.read()

                    def careful(n):
                        shm = shared_memory.SharedMemory(create=True, size=n)
                        try:
                            return bytes(shm.buf)
                        finally:
                            shm.close()
                            shm.unlink()

                    def handoff(path):
                        base = np.memmap(path, mode="r")
                        return base

                    class Block:
                        def __init__(self, n):
                            self.shm = shared_memory.SharedMemory(
                                create=True, size=n
                            )

                        def release(self):
                            self.shm.close()
                            self.shm.unlink()
                    """,
                "low.py": "",
            },
        )
        assert lint_pkg(root, LintConfig(layer=TWO_LAYERS), select=["L5"]) == []

    def test_attach_without_create_is_out_of_scope(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "high.py": """\
                    from multiprocessing import shared_memory

                    def attach(name):
                        shm = shared_memory.SharedMemory(name=name)
                        return bytes(shm.buf)
                    """,
                "low.py": "",
            },
        )
        assert lint_pkg(root, LintConfig(layer=TWO_LAYERS), select=["L5"]) == []

    def test_class_owned_resource_without_cleanup_fires(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "high.py": """\
                    from multiprocessing import shared_memory

                    class Block:
                        def __init__(self, n):
                            self.shm = shared_memory.SharedMemory(create=True, size=n)
                    """,
                "low.py": "",
            },
        )
        findings = lint_pkg(
            root, LintConfig(layer=TWO_LAYERS), select=["L5"]
        )
        assert [(f.rule, f.line) for f in findings] == [("L5", 5)]
        assert "no cleanup method" in findings[0].message


# ----------------------------------------------------------------------
# the real tree: zero findings, enforced in tier-1
# ----------------------------------------------------------------------
class TestRealTree:
    def test_shipped_baseline_is_empty(self):
        payload = json.loads(BASELINE.read_text())
        assert payload == {"version": 1, "findings": []}

    def test_full_pass_is_clean(self):
        findings = run_lint(REPRO_ROOT, REPRO_CONFIG, baseline_path=BASELINE)
        assert findings == [], "\n" + format_findings(findings)

    def test_cli_exits_zero_with_json(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--format", "json"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["count"] == 0

    def test_cli_rejects_unknown_rule(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--select", "L9"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 2
        assert "configuration error" in proc.stderr


# ----------------------------------------------------------------------
# mutation tests: the acceptance-criteria regressions
# ----------------------------------------------------------------------
@pytest.fixture()
def mutable_tree(tmp_path):
    dest = tmp_path / "repro"
    shutil.copytree(
        REPRO_ROOT, dest, ignore=shutil.ignore_patterns("__pycache__")
    )
    return dest


class TestMutations:
    def test_deleting_codec_stats_field_fails_lint(self, mutable_tree):
        wire = mutable_tree / "service" / "http" / "wire.py"
        source = wire.read_text()
        assert '    "cache_hits",\n' in source
        wire.write_text(source.replace('    "cache_hits",\n', "", 1))
        findings = run_lint(mutable_tree, REPRO_CONFIG, select=["L4"])
        assert any(
            f.rule == "L4" and "cache_hits" in f.message for f in findings
        )

    def test_queries_engine_import_fails_lint(self, mutable_tree):
        evaluate = mutable_tree / "queries" / "evaluate.py"
        with evaluate.open("a") as fh:
            fh.write("\nfrom ..engine.grid import StopGrid\n")
        findings = run_lint(mutable_tree, REPRO_CONFIG, select=["L1"])
        assert any(
            f.rule == "L1"
            and f.path == "repro/queries/evaluate.py"
            and "engine" in f.message
            for f in findings
        )

    def test_unguarded_stat_mutation_fails_lint(self, mutable_tree):
        service = mutable_tree / "service" / "service.py"
        source = service.read_text()
        needle = "        with self._stats_lock:\n            self._stats.requests_completed += 1\n"
        assert needle in source
        service.write_text(
            source.replace(
                needle, "        self._stats.requests_completed += 1\n", 1
            )
        )
        findings = run_lint(mutable_tree, REPRO_CONFIG, select=["L3"])
        assert any(
            f.rule == "L3"
            and f.path == "repro/service/service.py"
            and "self._stats" in f.message
            for f in findings
        )
