"""Tests for the best-first kMaxRRST query (Algorithms 3 and 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import (
    FacilityRoute,
    QueryError,
    ServiceModel,
    ServiceSpec,
    TQTree,
    TQTreeConfig,
    Trajectory,
    brute_force_service,
    build_full,
    build_segmented,
    build_tq_basic,
    build_tq_zorder,
)
from repro.queries import top_k_facilities

from .strategies import WORLD, facility_sets, psis, trajectory_sets


def exhaustive_ranking(users, facilities, spec):
    """Reference ranking by brute-force service value."""
    return sorted(
        ((brute_force_service(users, f, spec), f.facility_id) for f in facilities),
        key=lambda t: (-t[0], t[1]),
    )


def assert_topk_valid(result, users, facilities, spec, k):
    """The returned scores must be exact and no unreturned facility may
    beat a returned one (ties make the exact id set ambiguous)."""
    assert len(result.ranking) == min(k, len(facilities))
    scores = [fs.service for fs in result.ranking]
    assert scores == sorted(scores, reverse=True)
    for fs in result.ranking:
        assert fs.service == pytest.approx(
            brute_force_service(users, fs.facility, spec)
        )
    if result.ranking:
        cutoff = result.ranking[-1].service
        returned = {fs.facility.facility_id for fs in result.ranking}
        for f in facilities:
            if f.facility_id not in returned:
                assert brute_force_service(users, f, spec) <= cutoff + 1e-9


class TestTopK:
    @pytest.mark.parametrize("k", [1, 3, 12, 100])
    def test_matches_exhaustive_on_fixture(self, taxi_users, facilities, endpoint_spec, k):
        tree = build_tq_zorder(taxi_users, beta=16)
        result = top_k_facilities(tree, facilities, k, endpoint_spec)
        assert_topk_valid(result, taxi_users, facilities, endpoint_spec, k)

    def test_tq_basic_same_answer(self, taxi_users, facilities, endpoint_spec):
        tz = build_tq_zorder(taxi_users, beta=16)
        tb = build_tq_basic(taxi_users, beta=16)
        rz = top_k_facilities(tz, facilities, 5, endpoint_spec)
        rb = top_k_facilities(tb, facilities, 5, endpoint_spec)
        assert rz.services() == pytest.approx(rb.services())

    def test_count_model_on_segmented(self, checkin_users, facilities, count_spec):
        tree = build_segmented(checkin_users, beta=16)
        result = top_k_facilities(tree, facilities, 4, count_spec)
        assert_topk_valid(result, checkin_users, facilities, count_spec, 4)

    def test_length_model_on_full(self, checkin_users, facilities, length_spec):
        tree = build_full(checkin_users, beta=16)
        result = top_k_facilities(tree, facilities, 4, length_spec)
        assert_topk_valid(result, checkin_users, facilities, length_spec, 4)

    def test_raw_count_model_on_full(self, checkin_users, facilities):
        spec = ServiceSpec(ServiceModel.COUNT, psi=400.0, normalize=False)
        tree = build_full(checkin_users, beta=16)
        result = top_k_facilities(tree, facilities, 6, spec)
        assert_topk_valid(result, checkin_users, facilities, spec, 6)

    def test_k_larger_than_facilities(self, taxi_users, facilities, endpoint_spec):
        tree = build_tq_zorder(taxi_users, beta=16)
        result = top_k_facilities(tree, facilities, 999, endpoint_spec)
        assert len(result.ranking) == len(facilities)

    def test_invalid_k(self, taxi_users, facilities, endpoint_spec):
        tree = build_tq_zorder(taxi_users, beta=16)
        with pytest.raises(QueryError):
            top_k_facilities(tree, facilities, 0, endpoint_spec)
        with pytest.raises(QueryError):
            top_k_facilities(tree, facilities, -2, endpoint_spec)

    def test_empty_facility_list_rejected(self, taxi_users, endpoint_spec):
        # an empty candidate set is a malformed query, not an empty
        # ranking (the serving-layer hardening fix: over HTTP the old
        # behaviour was a 200 with an empty answer)
        tree = build_tq_zorder(taxi_users, beta=16)
        with pytest.raises(QueryError, match="facilities must be non-empty"):
            top_k_facilities(tree, [], 3, endpoint_spec)

    def test_facility_serving_nothing_ranks_zero(self, taxi_users, endpoint_spec):
        tree = build_tq_zorder(taxi_users, beta=16)
        far = FacilityRoute(0, [(10**6, 10**6), (10**6 + 10, 10**6)])
        result = top_k_facilities(tree, [far], 1, endpoint_spec)
        assert result.services() == (0.0,)

    def test_result_accessors(self, taxi_users, facilities, endpoint_spec):
        tree = build_tq_zorder(taxi_users, beta=16)
        result = top_k_facilities(tree, facilities, 3, endpoint_spec)
        assert len(result.facilities()) == 3
        assert len(result.services()) == 3
        assert result.stats.states_relaxed >= 0


class TestBestFirstBehaviour:
    def test_best_first_explores_fewer_nodes_than_full_eval(
        self, taxi_users, facilities, endpoint_spec
    ):
        """For k=1 the search should not fully evaluate every facility."""
        from repro.queries import QueryStats, evaluate_service

        tree = build_tq_zorder(taxi_users, beta=16)
        top1 = top_k_facilities(tree, facilities, 1, endpoint_spec)
        full_stats = QueryStats()
        for f in facilities:
            evaluate_service(tree, f, endpoint_spec, stats=full_stats)
        assert top1.stats.nodes_visited <= full_stats.nodes_visited

    def test_deterministic_across_runs(self, taxi_users, facilities, endpoint_spec):
        tree = build_tq_zorder(taxi_users, beta=16)
        a = top_k_facilities(tree, facilities, 4, endpoint_spec)
        b = top_k_facilities(tree, facilities, 4, endpoint_spec)
        assert [f.facility_id for f in a.facilities()] == [
            f.facility_id for f in b.facilities()
        ]


class TestPropertyTopK:
    @settings(max_examples=25, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=15, min_points=2, max_points=2),
        facility_sets(min_size=1, max_size=6),
        psis(),
    )
    def test_random_endpoint_instances(self, users, facs, psi):
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=psi)
        for use_zorder in (True, False):
            tree = TQTree.build(
                users, TQTreeConfig(beta=3, use_zorder=use_zorder), space=WORLD
            )
            result = top_k_facilities(tree, facs, 3, spec)
            assert_topk_valid(result, users, facs, spec, 3)

    @settings(max_examples=20, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=12, min_points=2, max_points=5),
        facility_sets(min_size=1, max_size=4),
        psis(),
    )
    def test_random_multipoint_instances(self, users, facs, psi):
        spec = ServiceSpec(ServiceModel.COUNT, psi=psi, normalize=False)
        for builder in (build_segmented, build_full):
            tree = builder(users, beta=3, space=WORLD)
            result = top_k_facilities(tree, facs, 2, spec)
            assert_topk_valid(result, users, facs, spec, 2)
