"""The persistent index store (:mod:`repro.store`).

Four contracts, each pinned differentially against the live builders:

* **container format** — atomic writes, page-aligned segments, content
  hashing, and a single typed :class:`~repro.core.errors.StoreError`
  for every way a file can be wrong (truncation, bad magic, version
  skew, bit rot, garbage headers);
* **round trips** — ``open_index(save_index(x))`` reproduces masks and
  stats bit-identically for every backend tier, under both memmap and
  eager loading, including empty/degenerate stop sets;
* **sharing** — a :class:`~repro.engine.ShardStore` spill directory
  turns rebuilds into opens (observable through the new counters), and
  the process policy ships a store *path* instead of copying arrays
  into shared memory when a shard is store-backed;
* **serving** — ``store:<dir>`` catalogs answer HTTP queries
  identically to freshly-built ones, with the store counters on
  ``GET /stats``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct

import numpy as np
import pytest

from repro import (
    ProximityBackend,
    QueryRuntime,
    QueryStats,
    RuntimeConfig,
)
from repro.core.errors import CatalogError, QueryError, ReproError, StoreError
from repro.core.stats import StoreStats
from repro.engine.cellstring import CellstringIndex, build_cellstring_index
from repro.engine.grid import StopGrid
from repro.engine.shards import (
    MmapStopShard,
    ShardedStopGrid,
    ShardStore,
    cellstring_spill_name,
    grid_spill_name,
)
from repro.index import build_tq_zorder
from repro.runtime.policies import ProcessPolicyExecutor
from repro.service.http import ServeClient, background_server, catalog_from_spec
from repro.service.http.catalog import build_store_catalog, open_store_catalog
from repro.store import (
    FORMAT_VERSION,
    MAGIC,
    adopt_tree_node_tables,
    inspect_store_file,
    open_index,
    open_trajectory_bundle,
    read_manifest,
    read_store_file,
    save_index,
    save_tree_node_tables,
    save_trajectory_bundle,
    write_store_file,
)
from repro.store.__main__ import main as store_main
from repro.store.codecs import KIND_FACILITIES, KIND_TRAJECTORIES

PSI = 400.0


def _coords(n: int, seed: int = 0, size: float = 6_000.0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, size, size=(n, 2))


def _probe_points(n: int = 300, seed: int = 9) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # straddle the stop extent so some points miss every cell
    return rng.uniform(-300.0, 6_300.0, size=(n, 2))


# the degenerate layouts test_engine_edges.py exercises against the
# oracle: the store must round-trip them, not just the happy path
DEGENERATE = {
    "empty": np.zeros((0, 2), dtype=np.float64),
    "single": np.array([[123.5, -67.25]]),
    "identical": np.full((5, 2), 1_000.0),
    "collinear": np.column_stack(
        [np.full(9, 250.0), np.linspace(0.0, 4_000.0, 9)]
    ),
}


def _flip_byte(path: str, offset: int) -> None:
    with open(path, "r+b") as fh:
        fh.seek(offset)
        original = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([original[0] ^ 0xFF]))


# ----------------------------------------------------------------------
# container format
# ----------------------------------------------------------------------
class TestContainerFormat:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "raw.idx")
        arrays = {
            "ints": np.arange(7, dtype=np.int64),
            "floats": np.linspace(0.0, 1.0, 5).reshape(5, 1),
            "empty": np.zeros((0, 3), dtype=np.float64),
        }
        digest = write_store_file(path, "raw", {"psi": 1.5, "n": 7}, arrays)
        for mmap_mode in ("r", None):
            kind, meta, got = read_store_file(path, mmap_mode=mmap_mode)
            assert kind == "raw"
            assert meta == {"psi": 1.5, "n": 7}
            assert set(got) == set(arrays)
            for name, arr in arrays.items():
                assert got[name].dtype == arr.dtype
                assert got[name].shape == arr.shape
                assert np.array_equal(got[name], arr)
                assert not got[name].flags.writeable
        # the hash is a pure function of kind/meta/content
        assert inspect_store_file(path)["content_hash"] == digest

    def test_prelude_and_page_alignment(self, tmp_path):
        path = str(tmp_path / "aligned.idx")
        write_store_file(
            path, "raw", {}, {"a": np.arange(3, dtype=np.int64),
                              "b": np.ones(1_000)}
        )
        with open(path, "rb") as fh:
            prelude = fh.read(12)
        magic, version = struct.unpack("<8sI", prelude)
        assert magic == MAGIC
        assert version == FORMAT_VERSION
        info = inspect_store_file(path)
        assert info["format_version"] == FORMAT_VERSION
        for seg in info["segments"]:
            assert seg["offset"] % 4096 == 0

    def test_write_is_atomic_and_cleans_temp(self, tmp_path, monkeypatch):
        target = tmp_path / "atomic.idx"

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.store.format.os.replace", boom)
        with pytest.raises(StoreError):
            write_store_file(str(target), "raw", {}, {"a": np.arange(4)})
        monkeypatch.undo()
        # the failed write left neither the target nor a temp file
        assert list(tmp_path.iterdir()) == []

    def test_rejects_unstorable_inputs(self, tmp_path):
        path = str(tmp_path / "bad.idx")
        with pytest.raises(StoreError):
            write_store_file(path, "raw", {}, {"a": np.zeros(2, dtype=np.int32)})
        with pytest.raises(StoreError):
            write_store_file(path, "", {}, {"a": np.zeros(2)})
        with pytest.raises(StoreError):
            write_store_file(path, "raw", {"bad": object()}, {"a": np.zeros(2)})
        with pytest.raises(StoreError):
            read_store_file(path, mmap_mode="w+")  # only "r" or None
        assert not os.path.exists(path)


class TestCorruption:
    """Every way a file can be wrong raises StoreError — never a raw
    struct.error/ValueError, never silently-garbage arrays."""

    @pytest.fixture()
    def stored(self, tmp_path):
        path = str(tmp_path / "grid.idx")
        save_index(path, StopGrid(_coords(200, seed=3), PSI))
        return path

    def test_missing_and_short_files(self, tmp_path):
        with pytest.raises(StoreError):
            open_index(str(tmp_path / "nope.idx"))
        stub = tmp_path / "stub.idx"
        stub.write_bytes(b"RPRO")
        with pytest.raises(StoreError):
            open_index(str(stub))

    def test_truncated(self, stored):
        size = os.path.getsize(stored)
        with open(stored, "r+b") as fh:
            fh.truncate(size // 2)
        with pytest.raises(StoreError):
            open_index(stored)

    def test_bad_magic(self, stored):
        _flip_byte(stored, 0)
        with pytest.raises(StoreError):
            open_index(stored)

    def test_wrong_version(self, stored):
        with open(stored, "r+b") as fh:
            fh.seek(8)
            fh.write(struct.pack("<I", FORMAT_VERSION + 1))
        with pytest.raises(StoreError):
            open_index(stored)

    def test_garbage_header_json(self, stored):
        with open(stored, "r+b") as fh:
            fh.seek(20)
            fh.write(b"not json!!")
        with pytest.raises(StoreError):
            open_index(stored)

    def test_payload_bit_rot_fails_hash(self, stored):
        assert os.path.getsize(stored) > 4096  # segments start at 4096
        _flip_byte(stored, 4096)
        with pytest.raises(StoreError):
            open_index(stored)  # verify=True recomputes the hash
        # verify=False is the trusted-coordinator fast path: it opens
        # (the workers rely on this after the coordinator verified)
        assert isinstance(open_index(stored, verify=False), StopGrid)

    def test_wrong_kind_for_open_index(self, tmp_path):
        path = str(tmp_path / "notindex.idx")
        write_store_file(path, "mystery", {}, {"a": np.zeros(3)})
        with pytest.raises(StoreError):
            open_index(path)


# ----------------------------------------------------------------------
# round trips: bit-identical masks and stats per tier
# ----------------------------------------------------------------------
def _builders(coords):
    yield "stop_grid", StopGrid(coords, PSI)
    for n_shards in (1, 2, 7):
        yield f"sharded_{n_shards}", ShardedStopGrid(coords, PSI, n_shards)
    yield "cellstring", build_cellstring_index(coords, PSI)


class TestIndexRoundTrip:
    @pytest.mark.parametrize("mmap_mode", ["r", None], ids=["mmap", "eager"])
    def test_masks_and_stats_bit_identical(self, tmp_path, mmap_mode):
        coords = _coords(600, seed=1)
        pts = _probe_points()
        for name, built in _builders(coords):
            path = str(tmp_path / f"{name}.idx")
            save_index(path, built)
            opened = open_index(path, mmap_mode=mmap_mode)
            assert type(opened) is type(built) or isinstance(
                opened, type(built)
            )
            built_stats, opened_stats = QueryStats(), QueryStats()
            built_mask = built.covered_mask(pts, PSI, built_stats)
            opened_mask = opened.covered_mask(pts, PSI, opened_stats)
            assert np.array_equal(built_mask, opened_mask), name
            assert built_stats == opened_stats, name
            assert np.array_equal(opened.coords, built.coords)
            assert not opened.coords.flags.writeable

    @pytest.mark.parametrize("case", sorted(DEGENERATE))
    @pytest.mark.parametrize("mmap_mode", ["r", None], ids=["mmap", "eager"])
    def test_degenerate_layouts_round_trip(self, tmp_path, case, mmap_mode):
        coords = DEGENERATE[case]
        pts = np.array([[0.0, 0.0], [250.0, 2_000.0], [1_000.0, 1_000.0]])
        for name, built in _builders(coords):
            path = str(tmp_path / f"{case}-{name}.idx")
            save_index(path, built)
            opened = open_index(path, mmap_mode=mmap_mode)
            assert np.array_equal(
                built.covered_mask(pts, PSI), opened.covered_mask(pts, PSI)
            ), (case, name)
            assert np.array_equal(opened.coords, coords)

    def test_mmap_sharded_grid_has_mmap_shards(self, tmp_path):
        path = str(tmp_path / "g.idx")
        save_index(path, ShardedStopGrid(_coords(300, seed=5), PSI, 4))
        opened = open_index(path, mmap_mode="r")
        populated = [s for s in opened.shards if s.n_stops]
        assert populated
        for shard in populated:
            assert isinstance(shard, MmapStopShard)
            assert shard.store_path == os.path.abspath(path)
            assert not shard.keys.flags.writeable
            assert not shard.coords.flags.writeable
        # eager mode loads plain shards: nothing references the file
        eager = open_index(path, mmap_mode=None)
        assert not any(isinstance(s, MmapStopShard) for s in eager.shards)

    def test_save_index_rejects_unknown_types(self, tmp_path):
        with pytest.raises(StoreError):
            save_index(str(tmp_path / "x.idx"), object())


class TestBundlesAndNodeTables:
    def test_trajectory_bundles_round_trip(self, tmp_path, taxi_users, facilities):
        upath = str(tmp_path / "users.idx")
        fpath = str(tmp_path / "facilities.idx")
        save_trajectory_bundle(upath, taxi_users, KIND_TRAJECTORIES)
        save_trajectory_bundle(fpath, facilities, KIND_FACILITIES)
        kind, users = open_trajectory_bundle(upath)
        assert kind == KIND_TRAJECTORIES
        assert [u.traj_id for u in users] == [u.traj_id for u in taxi_users]
        for got, want in zip(users, taxi_users):
            assert np.array_equal(got.coords, want.coords)
        kind, routes = open_trajectory_bundle(fpath)
        assert kind == KIND_FACILITIES
        assert [r.facility_id for r in routes] == [
            r.facility_id for r in facilities
        ]
        for got, want in zip(routes, facilities):
            assert np.array_equal(got.stop_coords, want.stop_coords)

    def test_node_tables_adopt_and_self_heal(self, tmp_path, taxi_users):
        tree = build_tq_zorder(taxi_users, beta=16)
        expected = [node.gov_arrays().copy() for node in tree.nodes()]
        path = str(tmp_path / "nodes.idx")
        save_tree_node_tables(path, tree)
        rebuilt = build_tq_zorder(taxi_users, beta=16)
        adopted = adopt_tree_node_tables(rebuilt, path)
        assert adopted == len(expected)
        for node, want in zip(rebuilt.nodes(), expected):
            assert np.array_equal(node.gov_arrays(), want)
        # a structurally different tree (other beta → other node count)
        # adopts nothing: a stale file costs a lazy rebuild, not a
        # wrong answer
        other = build_tq_zorder(taxi_users, beta=4)
        assert len(list(other.nodes())) != len(expected)
        assert adopt_tree_node_tables(other, path) == 0


# ----------------------------------------------------------------------
# ShardStore spill: opens instead of rebuilds, observably
# ----------------------------------------------------------------------
class TestShardStoreSpill:
    def test_spill_hits_count_opened_and_verified(self, tmp_path):
        coords = _coords(400, seed=7)
        spill = str(tmp_path)
        save_index(
            os.path.join(spill, grid_spill_name(coords, PSI, 3)),
            ShardedStopGrid(coords, PSI, 3),
        )
        save_index(
            os.path.join(spill, cellstring_spill_name(coords, PSI)),
            build_cellstring_index(coords, PSI),
        )
        store = ShardStore(spill_dir=spill)
        grid = store.sharded_grid(coords, PSI, 3)
        cs = store.cellstring_index(coords, PSI)
        assert isinstance(grid, ShardedStopGrid)
        assert isinstance(cs, CellstringIndex)
        assert any(isinstance(s, MmapStopShard) for s in grid.shards)
        stats = store.snapshot_stats()
        assert stats.opened == 2
        assert stats.verified == 2
        assert stats.grid_misses == 1 and stats.cellstring_misses == 1
        # second ask is an in-memory hit: no further opens
        assert store.sharded_grid(coords, PSI, 3) is grid
        assert store.cellstring_index(coords, PSI) is cs
        after = store.snapshot_stats()
        assert after.opened == 2
        assert after.grid_hits == 1 and after.cellstring_hits == 1

    def test_corrupt_spill_is_a_silent_miss(self, tmp_path):
        coords = _coords(150, seed=8)
        spill = str(tmp_path)
        name = grid_spill_name(coords, PSI, 2)
        save_index(os.path.join(spill, name), ShardedStopGrid(coords, PSI, 2))
        _flip_byte(os.path.join(spill, name), 4096)
        store = ShardStore(spill_dir=spill)
        grid = store.sharded_grid(coords, PSI, 2)  # must not raise
        assert not any(isinstance(s, MmapStopShard) for s in grid.shards)
        stats = store.snapshot_stats()
        assert stats.opened == 0 and stats.verified == 0
        assert stats.grid_misses == 1

    def test_no_spill_dir_never_touches_disk(self):
        coords = _coords(100, seed=2)
        store = ShardStore()
        store.sharded_grid(coords, PSI, 2)
        stats = store.snapshot_stats()
        assert stats.opened == 0 and stats.verified == 0

    def test_snapshots_are_immutable_and_isolated(self):
        coords = _coords(100, seed=4)
        store = ShardStore()
        before = store.snapshot_stats()
        with pytest.raises(dataclasses.FrozenInstanceError):
            before.opened = 99
        store.sharded_grid(coords, PSI, 2)
        # the earlier snapshot did not move with the live counters
        assert before.grid_misses == 0
        assert store.snapshot_stats().grid_misses == 1


# ----------------------------------------------------------------------
# differential: store-opened runtime == fresh runtime, every config
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def world():
    return _coords(900, seed=42), _probe_points(400)


@pytest.fixture(scope="module")
def runtime_store_dir(tmp_path_factory, world):
    stops, _ = world
    d = tmp_path_factory.mktemp("runtime-store")
    for n_shards in (1, 2, 7):
        save_index(
            str(d / grid_spill_name(stops, PSI, n_shards)),
            ShardedStopGrid(stops, PSI, n_shards),
        )
    save_index(
        str(d / cellstring_spill_name(stops, PSI)),
        build_cellstring_index(stops, PSI),
    )
    return str(d)


class TestRuntimeDifferential:
    @pytest.mark.parametrize("policy", ["serial", "threads", "processes"])
    @pytest.mark.parametrize("shards", [1, 2, 7])
    @pytest.mark.parametrize(
        "backend",
        [
            ProximityBackend.DENSE,
            ProximityBackend.GRID,
            ProximityBackend.CELLSTRING,
        ],
    )
    def test_opened_matches_fresh(
        self, world, runtime_store_dir, backend, shards, policy
    ):
        stops, pts = world
        config = RuntimeConfig(
            backend=backend, policy=policy, shards=shards, max_workers=2
        )
        with QueryRuntime(config) as fresh:
            fresh_stats = QueryStats()
            fresh_mask = fresh.probe_mask(stops, pts, PSI, fresh_stats)
            assert fresh.snapshot_store_stats().opened == 0
        with QueryRuntime(
            dataclasses.replace(config, store_dir=runtime_store_dir)
        ) as rt:
            store_stats = QueryStats()
            store_mask = rt.probe_mask(stops, pts, PSI, store_stats)
            counters = rt.snapshot_store_stats()
        assert np.array_equal(store_mask, fresh_mask)
        assert store_stats == fresh_stats
        if backend is ProximityBackend.CELLSTRING:
            # the cellstring build was opened from the store, not rebuilt
            assert counters.opened == 1 and counters.verified == 1
        elif backend is ProximityBackend.GRID and shards > 1:
            assert counters.opened == 1 and counters.verified == 1
        else:  # dense (or unsharded grid) never consults the store
            assert counters.opened == 0


# ----------------------------------------------------------------------
# mmap process transport: path shipped, no shared-memory copies
# ----------------------------------------------------------------------
class TestMmapProcessTransport:
    def test_store_backed_shards_skip_shared_memory(self, tmp_path):
        coords = _coords(500, seed=11)
        pts = _probe_points(250, seed=12)
        path = str(tmp_path / "transport.idx")
        save_index(path, ShardedStopGrid(coords, PSI, 4))
        opened = open_index(path, mmap_mode="r")
        serial_stats = QueryStats()
        serial_mask = opened.covered_mask(pts, PSI, serial_stats)
        executor = ProcessPolicyExecutor(max_workers=2)
        try:
            proc_stats = QueryStats()
            proc_mask = opened.covered_mask(pts, PSI, proc_stats, executor)
            assert np.array_equal(proc_mask, serial_mask)
            assert proc_stats == serial_stats
            # every populated shard rode the mmap path: the executor
            # shipped the store path, exported nothing to shared memory
            assert executor.mmap_shipped > 0
            assert executor.shm_shipped == 0
            assert len(executor._exports) == 0
            # the workers really mapped the same file (shared read-only
            # pages, not copies)
            assert os.path.abspath(path) in executor.worker_mmap_paths()
        finally:
            executor.close()

    def test_plain_shards_still_use_shared_memory(self):
        coords = _coords(500, seed=11)
        pts = _probe_points(250, seed=12)
        grid = ShardedStopGrid(coords, PSI, 4)
        executor = ProcessPolicyExecutor(max_workers=2)
        try:
            grid.covered_mask(pts, PSI, None, executor)
            assert executor.shm_shipped > 0
            assert executor.mmap_shipped == 0
        finally:
            executor.close()

    def test_vanished_store_file_recomputes_inline(self, tmp_path):
        coords = _coords(300, seed=13)
        pts = _probe_points(200, seed=14)
        path = str(tmp_path / "gone.idx")
        save_index(path, ShardedStopGrid(coords, PSI, 3))
        opened = open_index(path, mmap_mode="r")
        expected = opened.covered_mask(pts, PSI)
        os.unlink(path)  # the mapping stays valid; workers can't open it
        executor = ProcessPolicyExecutor(max_workers=2)
        try:
            mask = opened.covered_mask(pts, PSI, None, executor)
            assert np.array_equal(mask, expected)
        finally:
            executor.close()


# ----------------------------------------------------------------------
# catalog directory + CLI + HTTP serving
# ----------------------------------------------------------------------
DEMO_SPEC = "demo:150:6:12:5"
HTTP_PSI = 300.0


@pytest.fixture(scope="module")
def demo_store_dir(tmp_path_factory):
    d = str(tmp_path_factory.mktemp("catalog-store"))
    build_store_catalog(d, DEMO_SPEC, psi_values=(HTTP_PSI,), n_shards=2)
    return d


class TestStoreCatalog:
    def test_manifest_and_open(self, demo_store_dir):
        manifest = read_manifest(demo_store_dir)
        assert manifest["source"] == DEMO_SPEC
        assert set(manifest["trees"]) == {"demo"}
        assert set(manifest["facility_sets"]) == {"demo"}
        catalog = open_store_catalog(demo_store_dir)
        fresh = catalog_from_spec(DEMO_SPEC)
        assert catalog.tree_names == fresh.tree_names
        assert catalog.facility_set_names == fresh.facility_set_names
        got = catalog.describe()
        want = fresh.describe()
        assert got["trees"]["demo"]["n_trajectories"] == (
            want["trees"]["demo"]["n_trajectories"]
        )
        assert got["facility_sets"]["demo"]["facility_ids"] == (
            want["facility_sets"]["demo"]["facility_ids"]
        )

    def test_catalog_spec_errors_are_catalog_errors(self, tmp_path):
        with pytest.raises(CatalogError):
            catalog_from_spec("store:")
        with pytest.raises(CatalogError):
            catalog_from_spec(f"store:{tmp_path / 'missing'}")
        with pytest.raises(CatalogError):
            catalog_from_spec("blob:whatever")

    def test_cli_build_inspect_verify(self, tmp_path, capsys):
        out = str(tmp_path / "cli-store")
        assert store_main(
            ["build", "--out", out, "--source", "demo:60:3:8:2",
             "--psi", str(HTTP_PSI), "--shards", "2"]
        ) == 0
        capsys.readouterr()
        assert store_main(["verify", out]) == 0
        assert "ok" in capsys.readouterr().out
        manifest = read_manifest(out)
        some_file = os.path.join(out, manifest["index_files"][0])
        assert store_main(["inspect", some_file]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["format_version"] == FORMAT_VERSION
        # corrupting any file makes verify fail loudly with exit 1
        _flip_byte(some_file, 4096)
        assert store_main(["verify", out]) == 1

    def test_cli_reports_store_errors_as_exit_1(self, tmp_path, capsys):
        assert store_main(["verify", str(tmp_path / "nope")]) == 1
        assert "error" in capsys.readouterr().err.lower()


class TestHttpOverStore:
    def _payload(self):
        return {
            "type": "kmaxrrst", "tree": "demo", "facility_set": "demo",
            "k": 3, "spec": {"model": "endpoint", "psi": HTTP_PSI},
        }

    def test_store_catalog_serves_identically(self, demo_store_dir):
        runtime = RuntimeConfig(
            backend=ProximityBackend.GRID, policy="threads", shards=2,
            max_workers=2,
        )
        with background_server(
            catalog_from_spec(DEMO_SPEC), runtime_config=runtime
        ) as h:
            with ServeClient(h.host, h.port) as client:
                fresh = client.query(self._payload())
        store_runtime = dataclasses.replace(
            runtime, store_dir=demo_store_dir
        )
        with background_server(
            catalog_from_spec(f"store:{demo_store_dir}"),
            runtime_config=store_runtime,
        ) as h:
            with ServeClient(h.host, h.port) as client:
                opened = client.query(self._payload())
                counters = client.store_stats()
                raw = client.request("GET", "/stats")
        assert opened == fresh  # value, matches, AND per-request stats
        assert isinstance(counters, StoreStats)
        # the serving grids came from the store directory, verified
        assert counters.opened > 0
        assert counters.verified == counters.opened
        assert raw.body["store"]["opened"] == counters.opened

    def test_store_stats_wire_round_trip(self):
        from repro.service.http import wire

        stats = StoreStats(grid_hits=3, opened=2, verified=1)
        assert wire.decode_store_stats(wire.encode_store_stats(stats)) == stats
        with pytest.raises(QueryError):
            wire.decode_store_stats({"opened": 1, "bogus": 2})

    def test_serve_cli_derives_store_dir(self, demo_store_dir):
        from repro.serve import build_parser, config_from_args

        args = build_parser().parse_args(
            ["--catalog", f"store:{demo_store_dir}"]
        )
        config = config_from_args(args)
        # run() wires the catalog directory into the runtime; pin the
        # derivation logic it uses
        assert config.runtime.store_dir is None
        import repro.serve as serve_mod

        derived = config.catalog.split(":", 1)[1]
        assert derived == demo_store_dir
        assert hasattr(serve_mod, "run")

    def test_runtime_config_validates_store_dir(self):
        with pytest.raises(ReproError):
            RuntimeConfig(store_dir="")
        with pytest.raises(ReproError):
            RuntimeConfig(store_dir=123)
        assert RuntimeConfig(store_dir="/tmp/x").store_dir == "/tmp/x"
