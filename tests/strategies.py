"""Hypothesis strategies for geometric and trajectory inputs.

All strategies confine coordinates to a fixed box so generated data is
always indexable, and round coordinates to a coarse grid often enough to
exercise ties (shared endpoints, duplicate points, boundary cases) that
uniform floats would almost never produce.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro import BBox, FacilityRoute, Point, Trajectory

WORLD = BBox(0.0, 0.0, 1024.0, 1024.0)


def coords(grid: float = 0.25):
    """A coordinate inside WORLD, snapped to ``grid`` to provoke ties."""
    cells = int(1024.0 / grid)
    return st.integers(min_value=0, max_value=cells).map(lambda i: i * grid)


@st.composite
def points(draw) -> Point:
    return Point(draw(coords()), draw(coords()))


@st.composite
def trajectories(draw, min_points: int = 2, max_points: int = 6, traj_id=None) -> Trajectory:
    n = draw(st.integers(min_value=min_points, max_value=max_points))
    pts = [draw(points()) for _ in range(n)]
    tid = draw(st.integers(min_value=0, max_value=10**6)) if traj_id is None else traj_id
    return Trajectory(tid, pts)


@st.composite
def trajectory_sets(draw, min_size: int = 1, max_size: int = 24, **kw):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    return [draw(trajectories(traj_id=i, **kw)) for i in range(n)]


@st.composite
def facilities(draw, min_stops: int = 1, max_stops: int = 12, facility_id=None) -> FacilityRoute:
    n = draw(st.integers(min_value=min_stops, max_value=max_stops))
    stops = [draw(points()) for _ in range(n)]
    fid = draw(st.integers(min_value=0, max_value=10**6)) if facility_id is None else facility_id
    return FacilityRoute(fid, stops)


@st.composite
def facility_sets(draw, min_size: int = 1, max_size: int = 8, **kw):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    return [draw(facilities(facility_id=i, **kw)) for i in range(n)]


def psis():
    """Serving distances from tiny to world-spanning."""
    return st.sampled_from([0.0, 1.0, 10.0, 50.0, 200.0, 800.0])


@st.composite
def dense_facilities(
    draw, min_stops: int = 48, max_stops: int = 160, facility_id=None
) -> FacilityRoute:
    """A stop-dense facility: the regime the stop grid is built for.

    Half the stops cluster around a few anchors (typical route shape,
    many stops per grid cell), the rest scatter — so grids see both
    crowded and empty neighbourhoods.
    """
    n = draw(st.integers(min_value=min_stops, max_value=max_stops))
    anchors = [draw(points()) for _ in range(draw(st.integers(1, 4)))]
    stops = []
    for i in range(n):
        if i % 2 == 0:
            a = anchors[i % len(anchors)]
            dx = draw(st.integers(-40, 40)) * 0.25
            dy = draw(st.integers(-40, 40)) * 0.25
            stops.append(
                Point(
                    min(max(a.x + dx, WORLD.xmin), WORLD.xmax),
                    min(max(a.y + dy, WORLD.ymin), WORLD.ymax),
                )
            )
        else:
            stops.append(draw(points()))
    fid = draw(st.integers(min_value=0, max_value=10**6)) if facility_id is None else facility_id
    return FacilityRoute(fid, stops)


def engine_psis():
    """Serving distances that stress the stop grid.

    Includes 0 (exact coincidence), values commensurate with the
    0.25-snapped coordinate grid (1.25 = a 0.75/1.0 right triangle, 5.0
    = a 3/4 one — distances *exactly* equal to psi occur often, probing
    the closed boundary), cell-boundary-sized values, and radii large
    enough that the grid must fall back or degenerate to one cell.
    """
    return st.sampled_from([0.0, 0.25, 1.25, 5.0, 32.0, 200.0, 1024.0, 2048.0])
