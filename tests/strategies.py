"""Hypothesis strategies for geometric and trajectory inputs.

All strategies confine coordinates to a fixed box so generated data is
always indexable, and round coordinates to a coarse grid often enough to
exercise ties (shared endpoints, duplicate points, boundary cases) that
uniform floats would almost never produce.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro import BBox, FacilityRoute, Point, Trajectory

WORLD = BBox(0.0, 0.0, 1024.0, 1024.0)


def coords(grid: float = 0.25):
    """A coordinate inside WORLD, snapped to ``grid`` to provoke ties."""
    cells = int(1024.0 / grid)
    return st.integers(min_value=0, max_value=cells).map(lambda i: i * grid)


@st.composite
def points(draw) -> Point:
    return Point(draw(coords()), draw(coords()))


@st.composite
def trajectories(draw, min_points: int = 2, max_points: int = 6, traj_id=None) -> Trajectory:
    n = draw(st.integers(min_value=min_points, max_value=max_points))
    pts = [draw(points()) for _ in range(n)]
    tid = draw(st.integers(min_value=0, max_value=10**6)) if traj_id is None else traj_id
    return Trajectory(tid, pts)


@st.composite
def trajectory_sets(draw, min_size: int = 1, max_size: int = 24, **kw):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    return [draw(trajectories(traj_id=i, **kw)) for i in range(n)]


@st.composite
def facilities(draw, min_stops: int = 1, max_stops: int = 12, facility_id=None) -> FacilityRoute:
    n = draw(st.integers(min_value=min_stops, max_value=max_stops))
    stops = [draw(points()) for _ in range(n)]
    fid = draw(st.integers(min_value=0, max_value=10**6)) if facility_id is None else facility_id
    return FacilityRoute(fid, stops)


@st.composite
def facility_sets(draw, min_size: int = 1, max_size: int = 8, **kw):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    return [draw(facilities(facility_id=i, **kw)) for i in range(n)]


def psis():
    """Serving distances from tiny to world-spanning."""
    return st.sampled_from([0.0, 1.0, 10.0, 50.0, 200.0, 800.0])
