"""Edge-case tests for the uniform stop grid.

The grid's correctness argument (a stop within ``psi`` of a point is
always in the 3x3 cell neighbourhood because cells are at least ``psi``
wide) has sharp corners: empty stop sets, ``psi = 0``, points exactly
on cell boundaries, distances exactly equal to ``psi``, one-stop
facilities, and coordinates spanning negative/positive quadrants (the
grid origin is the stop bbox corner, but probe points may lie anywhere).
Each case is pinned against the dense oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BatchQueryEngine,
    GriddedStopSet,
    Point,
    ProximityBackend,
    QueryError,
    ServiceModel,
    ServiceSpec,
    StopGrid,
    StopSet,
    Trajectory,
    brute_force_service,
)


def _assert_grid_matches_dense(stop_coords, probe, psi):
    stops = np.asarray(stop_coords, dtype=np.float64).reshape(-1, 2)
    pts = np.asarray(probe, dtype=np.float64).reshape(-1, 2)
    dense = StopSet(stops)
    expected = dense.covered_mask(pts, psi)
    grid = StopGrid(stops, psi)
    gridded = GriddedStopSet(stops, psi)
    assert np.array_equal(expected, grid.covered_mask(pts, psi))
    assert np.array_equal(expected, gridded.covered_mask(pts, psi))
    return expected


class TestEmptyAndDegenerate:
    def test_empty_stop_set(self):
        empty = np.zeros((0, 2))
        probe = [[0.0, 0.0], [5.0, 5.0]]
        mask = _assert_grid_matches_dense(empty, probe, 10.0)
        assert not mask.any()
        grid = StopGrid(empty, 10.0)
        assert grid.is_empty and grid.n_cells == 0
        assert not grid.covers_point(Point(0.0, 0.0), 10.0)

    def test_single_stop_facility(self):
        probe = [[0.0, 0.0], [3.0, 4.0], [3.0, 4.001], [-3.0, -4.0]]
        mask = _assert_grid_matches_dense([[0.0, 0.0]], probe, 5.0)
        assert mask.tolist() == [True, True, False, True]

    def test_all_stops_coincident(self):
        stops = [[7.0, 7.0]] * 12
        probe = [[7.0, 7.0], [7.0, 8.0], [8.1, 7.0]]
        mask = _assert_grid_matches_dense(stops, probe, 1.0)
        assert mask.tolist() == [True, True, False]

    def test_empty_probe_block(self):
        grid = StopGrid(np.array([[0.0, 0.0]]), 1.0)
        assert grid.covered_mask(np.zeros((0, 2)), 1.0).shape == (0,)


class TestPsiZero:
    def test_exact_coincidence_only(self):
        stops = [[1.0, 1.0], [2.0, 2.0]]
        probe = [[1.0, 1.0], [1.0, 1.0 + 1e-12], [2.0, 2.0], [1.5, 1.5]]
        mask = _assert_grid_matches_dense(stops, probe, 0.0)
        assert mask.tolist() == [True, False, True, False]

    def test_psi_zero_scores(self):
        users = [Trajectory(0, [(1.0, 1.0), (2.0, 2.0)]),
                 Trajectory(1, [(1.0, 1.0), (3.0, 3.0)])]
        from repro import FacilityRoute

        f = FacilityRoute(0, [(1.0, 1.0), (2.0, 2.0)])
        engine = BatchQueryEngine(users, backend=ProximityBackend.GRID)
        for model in ServiceModel:
            spec = ServiceSpec(model, psi=0.0)
            assert engine.query(f, spec) == brute_force_service(users, f, spec)

    def test_negative_psi_rejected(self):
        with pytest.raises(QueryError):
            StopGrid(np.array([[0.0, 0.0]]), -1.0)
        with pytest.raises(QueryError):
            GriddedStopSet(np.array([[0.0, 0.0]]), -1.0)


class TestBoundaries:
    def test_points_on_cell_boundaries(self):
        """Stops on exact multiples of the cell size: a probe point on a
        shared cell edge must still find stops in every direction."""
        psi = 1.0
        stops = [[x * 1.0, y * 1.0] for x in range(5) for y in range(5)]
        probe = (
            [[x * 1.0, y * 1.0] for x in range(5) for y in range(5)]
            + [[x + 0.5, y + 0.5] for x in range(4) for y in range(4)]
            + [[2.0, 2.5], [2.5, 2.0], [0.0, 5.0], [5.0, 0.0]]
        )
        mask = _assert_grid_matches_dense(stops, probe, psi)
        assert mask[: 25].all()  # lattice points sit on stops

    def test_distance_exactly_psi_is_covered(self):
        """The serving disc is closed: d == psi counts (3-4-5 triangle)."""
        mask = _assert_grid_matches_dense(
            [[0.0, 0.0]], [[3.0, 4.0], [5.0, 0.0], [0.0, 5.0]], 5.0
        )
        assert mask.all()

    def test_distance_just_beyond_psi_is_not_covered(self):
        mask = _assert_grid_matches_dense(
            [[0.0, 0.0]], [[np.nextafter(5.0, 6.0), 0.0]], 5.0
        )
        assert not mask.any()

    def test_probe_far_outside_grid(self):
        """Points whose cells lie outside the stop grid band are
        definitively uncovered — no candidate gathering runs at all."""
        stops = [[0.0, 0.0], [10.0, 10.0]]
        probe = [[1e6, 1e6], [-1e6, 3.0], [5.0, -1e6]]
        mask = _assert_grid_matches_dense(stops, probe, 5.0)
        assert not mask.any()

    def test_psi_larger_than_cell_falls_back_dense(self):
        """Asking a built grid for a bigger radius must stay exact."""
        stops = np.array([[float(i), 0.0] for i in range(50)])
        grid = StopGrid(stops, 1.0)
        big_psi = 10.0
        assert big_psi > grid.cell_size
        expected = StopSet(stops).covered_mask(
            np.array([[25.0, 9.0], [25.0, 11.0]]), big_psi
        )
        assert np.array_equal(
            expected,
            grid.covered_mask(np.array([[25.0, 9.0], [25.0, 11.0]]), big_psi),
        )

    def test_cell_size_smaller_than_psi_rejected(self):
        with pytest.raises(QueryError):
            StopGrid(np.array([[0.0, 0.0]]), 5.0, cell_size=1.0)

    def test_large_psi_query_does_not_coarsen_the_grid(self):
        """One oversized query must not degrade later queries at the
        provisioned radius: the fine grid survives, a separate coarse
        grid serves the big radius, and both stay exact."""
        stops = np.array([[float(i % 20), float(i // 20)] for i in range(400)])
        gss = GriddedStopSet(stops, 1.0)
        probe = np.array([[5.2, 5.2], [30.0, 30.0], [0.0, 19.0]])
        dense = StopSet(stops)
        assert np.array_equal(
            gss.covered_mask(probe, 1.0), dense.covered_mask(probe, 1.0)
        )
        fine_cell = gss._grid.cell_size
        assert np.array_equal(
            gss.covered_mask(probe, 90.0), dense.covered_mask(probe, 90.0)
        )
        assert np.array_equal(
            gss.covered_mask(probe, 1.0), dense.covered_mask(probe, 1.0)
        )
        assert gss._grid.cell_size == fine_cell  # fine grid untouched
        assert gss._coarse_grid is not None
        assert gss._coarse_grid.cell_size >= 90.0


class TestDegenerateGeometryHardening:
    """Pins for the degenerate-input sweep: subnormal radii, huge
    coordinates, non-finite probes, and the floor-quotient clamp.  Each
    is differential against the dense oracle — the hardened paths must
    stay *exact*, not merely not-crash."""

    def test_huge_coordinates_subnormal_psi(self):
        """Coincident stops at 1e10 with psi at the float floor: cell
        derivation must not collapse to cell <= psi (strictness check)
        and origin snapping must not overflow to non-finite."""
        stops = np.full((6, 2), 1.0e10)
        probe = [[1.0e10, 1.0e10], [1.0e10 + 1.0, 1.0e10], [0.0, 0.0]]
        for psi in (1e-300, 5e-324, 0.0):
            mask = _assert_grid_matches_dense(stops, probe, psi)
            assert mask.tolist() == [True, False, False]
            grid = StopGrid(np.asarray(stops), psi)
            assert grid.cell_size > psi
            assert np.isfinite(grid._ox) and np.isfinite(grid._oy)
            assert grid._ox <= 1.0e10 and grid._oy <= 1.0e10

    def test_extent_zero_psi_zero(self):
        """Both degenerate knobs at once: coincident stops and a zero
        radius still derive a strictly positive cell."""
        stops = np.full((4, 2), 37.25)
        grid = StopGrid(stops, 0.0)
        assert grid.cell_size > 0.0
        mask = _assert_grid_matches_dense(stops, [[37.25, 37.25], [37.3, 37.25]], 0.0)
        assert mask.tolist() == [True, False]

    def test_max_cells_per_axis_clamp_stays_exact(self):
        """A wide extent with tiny psi trips the cells-per-axis clamp
        (coarser cells than psi would suggest); answers stay exact
        because the gather radius widens with the cell."""
        stops = np.array([[0.0, 0.0], [3.0e6, 0.0], [1.5e6, 7.0]])
        probe = [[0.0, 0.001], [3.0e6, 0.0011], [1.5e6, 7.0], [1.0e6, 0.0]]
        for psi in (0.001, 0.01):
            grid = StopGrid(stops, psi)
            assert grid.cell_size >= 3.0e6 / (1 << 20)  # the clamp engaged
            _assert_grid_matches_dense(stops, probe, psi)

    def test_far_probes_do_not_overflow_indices(self):
        """Probe points quintillions of cells away: the floor-quotient
        clamp keeps the int cast defined and the answer a clean miss."""
        stops = np.array([[0.0, 0.0], [10.0, 10.0]])
        probe = [[1e18, 1e18], [-1e18, 5.0], [5.0, -1e18], [1e308, -1e308]]
        mask = _assert_grid_matches_dense(stops, probe, 0.001)
        assert not mask.any()

    def test_nonfinite_probes_are_sound_misses(self):
        """NaN/inf probe coordinates: the dense kernel says False (NaN
        comparisons are false), and the grid must agree instead of
        feeding undefined casts into the gather."""
        stops = np.array([[0.0, 0.0], [10.0, 10.0]])
        probe = np.array(
            [[np.nan, 0.0], [0.0, np.nan], [np.inf, 0.0], [-np.inf, np.nan]]
        )
        mask = _assert_grid_matches_dense(stops, probe, 5.0)
        assert not mask.any()

    def test_single_stop_every_degenerate_psi(self):
        for psi in (0.0, 5e-324, 1e-300, 1e300):
            _assert_grid_matches_dense(
                [[2.5, -7.25]], [[2.5, -7.25], [2.5, -7.0], [100.0, 100.0]], psi
            )


class TestQuadrants:
    def test_negative_and_positive_coordinates(self):
        """Stops and probes spanning all four quadrants around the
        origin (cell indices relative to the bbox corner, probes with
        negative raw coordinates)."""
        stops = [[-10.0, -10.0], [-10.0, 10.0], [10.0, -10.0], [10.0, 10.0],
                 [0.0, 0.0], [-3.0, 4.0]]
        probe = [[-10.0, -10.0], [-12.0, -10.0], [-13.1, -10.0],
                 [0.0, 0.0], [-3.0, 4.0], [-6.0, 8.0], [9.0, 9.0],
                 [-10.0, 13.0], [13.0, -10.0], [0.1, 0.1]]
        for psi in (0.0, 1.0, 3.0, 5.0, 40.0):
            _assert_grid_matches_dense(stops, probe, psi)

    def test_batch_engine_negative_quadrants(self):
        users = [
            Trajectory(0, [(-5.0, -5.0), (5.0, 5.0)]),
            Trajectory(1, [(-5.0, 5.0), (5.0, -5.0), (0.0, 0.0)]),
        ]
        from repro import FacilityRoute

        f = FacilityRoute(0, [(-5.0, -5.0), (0.0, 0.0), (5.0, 5.0)])
        engine = BatchQueryEngine(users, backend=ProximityBackend.GRID)
        for model in ServiceModel:
            for psi in (0.0, 2.0, 7.5):
                spec = ServiceSpec(model, psi=psi)
                assert engine.query(f, spec) == brute_force_service(
                    users, f, spec
                )
