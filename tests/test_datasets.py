"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CityModel,
    DatasetError,
    generate_bus_routes,
    generate_checkin_trajectories,
    generate_gps_traces,
    generate_taxi_trips,
)
from repro.datasets import summarize_facilities, summarize_users
from repro.datasets.city import Hotspot
from repro.core.geometry import BBox, Point


class TestCityModel:
    def test_generate_deterministic(self):
        a = CityModel.generate(seed=5)
        b = CityModel.generate(seed=5)
        assert [h.center for h in a.hotspots] == [h.center for h in b.hotspots]

    def test_different_seeds_differ(self):
        a = CityModel.generate(seed=5)
        b = CityModel.generate(seed=6)
        assert [h.center for h in a.hotspots] != [h.center for h in b.hotspots]

    def test_requires_hotspots(self):
        with pytest.raises(DatasetError):
            CityModel(BBox(0, 0, 1, 1), [])

    def test_invalid_params(self):
        with pytest.raises(DatasetError):
            CityModel.generate(n_hotspots=0)
        with pytest.raises(DatasetError):
            CityModel.generate(size=-10)
        hotspot = Hotspot(Point(0.5, 0.5), 0.1, 1.0)
        with pytest.raises(DatasetError):
            CityModel(BBox(0, 0, 1, 1), [hotspot], background_prob=1.5)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(DatasetError):
            CityModel(BBox(0, 0, 1, 1), [Hotspot(Point(0.5, 0.5), 0.1, 0.0)])

    def test_samples_stay_in_bounds(self):
        city = CityModel.generate(seed=1, size=1000.0)
        rng = np.random.default_rng(0)
        for _ in range(200):
            p = city.sample_location(rng)
            assert city.bounds.contains_point(p)

    def test_sample_near_scale_zero(self):
        city = CityModel.generate(seed=1, size=1000.0)
        rng = np.random.default_rng(0)
        origin = Point(500, 500)
        assert city.sample_near(origin, 0.0, rng) == origin

    def test_destination_decay_prefers_nearby(self):
        """With strong decay, destinations cluster near the origin's hotspot."""
        city = CityModel.generate(seed=3, size=10_000.0, n_hotspots=8)
        rng = np.random.default_rng(0)
        origin = city.hotspots[0].center
        near = sum(
            1
            for _ in range(100)
            if city.sample_destination(origin, rng, decay=500.0).dist_to(origin) < 5000
        )
        assert near > 50


class TestTaxi:
    def test_counts_and_shape(self):
        city = CityModel.generate(seed=1, size=5000.0)
        trips = generate_taxi_trips(50, city, seed=2)
        assert len(trips) == 50
        assert all(t.n_points == 2 for t in trips)
        assert [t.traj_id for t in trips] == list(range(50))

    def test_deterministic(self):
        city = CityModel.generate(seed=1, size=5000.0)
        a = generate_taxi_trips(20, city, seed=2)
        b = generate_taxi_trips(20, city, seed=2)
        assert a == b

    def test_start_id_offset(self):
        city = CityModel.generate(seed=1, size=5000.0)
        trips = generate_taxi_trips(5, city, seed=2, start_id=100)
        assert [t.traj_id for t in trips] == [100, 101, 102, 103, 104]

    def test_negative_count_rejected(self):
        city = CityModel.generate(seed=1)
        with pytest.raises(DatasetError):
            generate_taxi_trips(-1, city)

    def test_min_trip_dist_mostly_respected(self):
        city = CityModel.generate(seed=1, size=20_000.0)
        trips = generate_taxi_trips(100, city, seed=2, min_trip_dist=1000.0)
        short = sum(1 for t in trips if t.length < 1000.0)
        assert short <= 10  # resampling keeps rare degenerate trips only

    def test_zero_trips(self):
        city = CityModel.generate(seed=1)
        assert generate_taxi_trips(0, city) == []


class TestCheckins:
    def test_point_count_range(self):
        city = CityModel.generate(seed=1, size=5000.0)
        out = generate_checkin_trajectories(40, city, seed=3, min_points=3, max_points=7)
        assert len(out) == 40
        assert all(3 <= t.n_points <= 7 for t in out)

    def test_invalid_point_range(self):
        city = CityModel.generate(seed=1)
        with pytest.raises(DatasetError):
            generate_checkin_trajectories(5, city, min_points=5, max_points=3)
        with pytest.raises(DatasetError):
            generate_checkin_trajectories(5, city, min_points=0, max_points=3)

    def test_deterministic(self):
        city = CityModel.generate(seed=1, size=5000.0)
        assert generate_checkin_trajectories(10, city, seed=4) == \
            generate_checkin_trajectories(10, city, seed=4)

    def test_all_points_in_bounds(self):
        city = CityModel.generate(seed=1, size=5000.0)
        for t in generate_checkin_trajectories(30, city, seed=5):
            for p in t.points:
                assert city.bounds.contains_point(p)

    def test_hops_are_local(self):
        """With jump_prob=0, consecutive check-ins stay within a few
        hop-scales of each other."""
        city = CityModel.generate(seed=1, size=50_000.0)
        out = generate_checkin_trajectories(
            20, city, seed=6, hop_scale=100.0, jump_prob=0.0
        )
        for t in out:
            for a, b in zip(t.points, t.points[1:]):
                assert a.dist_to(b) < 1000.0


class TestGeolife:
    def test_counts_and_range(self):
        city = CityModel.generate(seed=1, size=5000.0)
        out = generate_gps_traces(15, city, seed=7, min_points=10, max_points=20)
        assert len(out) == 15
        assert all(10 <= t.n_points <= 20 for t in out)

    def test_invalid_params(self):
        city = CityModel.generate(seed=1)
        with pytest.raises(DatasetError):
            generate_gps_traces(5, city, min_points=1, max_points=3)
        with pytest.raises(DatasetError):
            generate_gps_traces(5, city, step_mean=0.0)
        with pytest.raises(DatasetError):
            generate_gps_traces(-1, city)

    def test_all_points_in_bounds(self):
        city = CityModel.generate(seed=1, size=3000.0)
        for t in generate_gps_traces(20, city, seed=8):
            for p in t.points:
                assert city.bounds.contains_point(p)

    def test_steps_have_gps_scale(self):
        city = CityModel.generate(seed=1, size=50_000.0)
        out = generate_gps_traces(10, city, seed=9, step_mean=100.0)
        steps = [
            a.dist_to(b) for t in out for a, b in zip(t.points, t.points[1:])
        ]
        assert 20.0 < float(np.mean(steps)) < 500.0

    def test_deterministic(self):
        city = CityModel.generate(seed=1, size=5000.0)
        assert generate_gps_traces(5, city, seed=10) == generate_gps_traces(
            5, city, seed=10
        )


class TestBusRoutes:
    def test_counts(self):
        city = CityModel.generate(seed=1, size=20_000.0)
        routes = generate_bus_routes(12, city, seed=11, n_stops=32)
        assert len(routes) == 12
        assert all(r.n_stops == 32 for r in routes)

    def test_natural_stop_spacing(self):
        city = CityModel.generate(seed=1, size=20_000.0)
        routes = generate_bus_routes(8, city, seed=12, stop_spacing=400.0)
        for r in routes:
            assert r.n_stops >= 2
            spacings = [
                r.stops[i].dist_to(r.stops[i + 1]) for i in range(r.n_stops - 1)
            ]
            assert float(np.mean(spacings)) < 1200.0

    def test_invalid_params(self):
        city = CityModel.generate(seed=1)
        with pytest.raises(DatasetError):
            generate_bus_routes(-1, city)
        with pytest.raises(DatasetError):
            generate_bus_routes(2, city, n_stops=0)
        with pytest.raises(DatasetError):
            generate_bus_routes(2, city, stop_spacing=-5.0)
        with pytest.raises(DatasetError):
            generate_bus_routes(2, city, grid=0.0)

    def test_deterministic(self):
        city = CityModel.generate(seed=1, size=20_000.0)
        assert generate_bus_routes(4, city, seed=13, n_stops=16) == \
            generate_bus_routes(4, city, seed=13, n_stops=16)

    def test_routes_are_manhattan_like(self):
        """Consecutive stops mostly move along one axis at a time."""
        city = CityModel.generate(seed=1, size=20_000.0)
        routes = generate_bus_routes(6, city, seed=14, n_stops=24)
        axis_aligned = 0
        total = 0
        for r in routes:
            for a, b in zip(r.stops, r.stops[1:]):
                total += 1
                if abs(a.x - b.x) < 1e-6 or abs(a.y - b.y) < 1e-6:
                    axis_aligned += 1
        assert axis_aligned / total > 0.8

    def test_single_stop_routes(self):
        city = CityModel.generate(seed=1, size=20_000.0)
        routes = generate_bus_routes(3, city, seed=15, n_stops=1)
        assert all(r.n_stops == 1 for r in routes)


class TestSummaries:
    def test_user_summary_point_to_point(self):
        city = CityModel.generate(seed=1, size=5000.0)
        trips = generate_taxi_trips(25, city, seed=2)
        s = summarize_users("NYT-like", trips)
        assert s.n_trajectories == 25
        assert s.kind == "point-to-point"
        assert s.n_points == 50

    def test_user_summary_multipoint(self):
        city = CityModel.generate(seed=1, size=5000.0)
        checkins = generate_checkin_trajectories(10, city, seed=3)
        s = summarize_users("NYF-like", checkins)
        assert s.kind == "multipoint"
        assert s.mean_points == pytest.approx(s.n_points / 10)

    def test_facility_summary(self):
        city = CityModel.generate(seed=1, size=20_000.0)
        routes = generate_bus_routes(5, city, seed=4, n_stops=10)
        s = summarize_facilities("NY-like", routes)
        assert s.n_facilities == 5
        assert s.n_stop_points == 50
        assert s.mean_stops == 10.0

    def test_empty_summaries(self):
        assert summarize_users("x", []).n_trajectories == 0
        assert summarize_facilities("x", []).mean_stops == 0.0
