"""Every deprecated entrypoint warns exactly once and still routes
through :class:`~repro.runtime.QueryRuntime` (ISSUE-4 satellite).

The legacy ``backend=`` / ``cache=`` keywords survive as shims on each
query function and on :class:`~repro.engine.BatchQueryEngine`.  The
contract centralised here: one call → exactly one
:exc:`DeprecationWarning` (not zero, not a warning per internal hop),
the answer equals the modern ``runtime=`` path bit-for-bit, and the
legacy cache object is genuinely used — proof the shim really builds
and routes through a runtime rather than silently falling back to the
uncached dense path.
"""

from __future__ import annotations

import warnings

import pytest

from repro import (
    BatchQueryEngine,
    CoverageCache,
    ProximityBackend,
    ServiceModel,
    ServiceSpec,
    TQTree,
    TQTreeConfig,
    evaluate_service,
    exact_max_k_coverage,
    genetic_max_k_coverage,
    maxkcov_tq,
    top_k_facilities,
)
from repro.queries.components import FacilityComponent
from repro.queries.evaluate import evaluate_node_trajectories
from repro.queries.maxkcov import tq_match_fn

SPEC = ServiceSpec(ServiceModel.ENDPOINT, psi=400.0)
COUNT = ServiceSpec(ServiceModel.COUNT, psi=400.0)


@pytest.fixture(scope="module")
def tree(taxi_users):
    return TQTree.build(taxi_users, TQTreeConfig(beta=16))


def _deprecations(record):
    return [w for w in record if issubclass(w.category, DeprecationWarning)]


def _call_counting_warnings(fn):
    """Run ``fn`` recording warnings; return (result, deprecation list)."""
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        result = fn()
    return result, _deprecations(record)


class TestEachShimWarnsExactlyOnce:
    def test_evaluate_service_backend_and_cache(self, tree, facilities):
        plain = evaluate_service(tree, facilities[0], SPEC)
        cache = CoverageCache()
        legacy, warned = _call_counting_warnings(
            lambda: evaluate_service(
                tree, facilities[0], SPEC,
                backend=ProximityBackend.GRID, cache=cache,
            )
        )
        assert len(warned) == 1
        assert legacy == plain
        assert len(cache) > 0  # the legacy cache really was routed through

    def test_evaluate_node_trajectories_cache_keyword(self, tree, facilities):
        component = FacilityComponent.whole(facilities[0], SPEC.psi)
        component = component.restricted_to(tree.root.box)
        plain = evaluate_node_trajectories(tree, tree.root, component, SPEC)
        cache = CoverageCache()
        legacy, warned = _call_counting_warnings(
            lambda: evaluate_node_trajectories(
                tree, tree.root, component, SPEC, cache=cache
            )
        )
        assert len(warned) == 1
        assert legacy == plain

    def test_evaluate_node_trajectories_legacy_positional_slot(
        self, tree, facilities
    ):
        """PR-2 callers passed a bare cache in the runtime slot; the shim
        must catch it (one warning, same answer) instead of crashing."""
        component = FacilityComponent.whole(facilities[0], SPEC.psi)
        component = component.restricted_to(tree.root.box)
        plain = evaluate_node_trajectories(tree, tree.root, component, SPEC)
        legacy, warned = _call_counting_warnings(
            lambda: evaluate_node_trajectories(
                tree, tree.root, component, SPEC, None, None, CoverageCache()
            )
        )
        assert len(warned) == 1
        assert legacy == plain

    def test_top_k_facilities_backend_and_cache(self, tree, facilities):
        plain = top_k_facilities(tree, facilities, 3, SPEC)
        cache = CoverageCache()
        legacy, warned = _call_counting_warnings(
            lambda: top_k_facilities(
                tree, facilities, 3, SPEC,
                backend=ProximityBackend.GRID, cache=cache,
            )
        )
        assert len(warned) == 1
        assert legacy.ranking == plain.ranking
        assert len(cache) > 0

    def test_maxkcov_tq_backend_and_cache(self, tree, facilities):
        plain = maxkcov_tq(tree, facilities, 2, SPEC)
        cache = CoverageCache()
        legacy, warned = _call_counting_warnings(
            lambda: maxkcov_tq(
                tree, facilities, 2, SPEC,
                backend=ProximityBackend.GRID, cache=cache,
            )
        )
        assert len(warned) == 1
        assert legacy.facility_ids() == plain.facility_ids()
        assert legacy.combined_service == plain.combined_service
        assert len(cache) > 0

    def test_tq_match_fn_backend_and_cache(self, tree, facilities):
        plain = tq_match_fn(tree, SPEC)(facilities[0])
        cache = CoverageCache()
        fn, warned = _call_counting_warnings(
            lambda: tq_match_fn(
                tree, SPEC, backend=ProximityBackend.GRID, cache=cache
            )
        )
        assert len(warned) == 1  # warned at construction, not per call
        assert fn(facilities[0]) == plain
        assert len(cache) > 0

    def test_exact_max_k_coverage_cache(self, tree, taxi_users, facilities):
        subset = facilities[:4]
        match_fn = tq_match_fn(tree, SPEC)
        plain = exact_max_k_coverage(taxi_users, subset, 2, SPEC, match_fn)
        cache = CoverageCache()
        legacy, warned = _call_counting_warnings(
            lambda: exact_max_k_coverage(
                taxi_users, subset, 2, SPEC, match_fn, cache=cache
            )
        )
        assert len(warned) == 1
        assert legacy.facility_ids() == plain.facility_ids()
        assert len(cache) > 0  # match sets were deduped through the shim

    def test_genetic_max_k_coverage_cache(self, tree, taxi_users, facilities):
        subset = facilities[:4]
        match_fn = tq_match_fn(tree, SPEC)
        plain = genetic_max_k_coverage(taxi_users, subset, 2, SPEC, match_fn)
        cache = CoverageCache()
        legacy, warned = _call_counting_warnings(
            lambda: genetic_max_k_coverage(
                taxi_users, subset, 2, SPEC, match_fn, cache=cache
            )
        )
        assert len(warned) == 1
        assert legacy.facility_ids() == plain.facility_ids()
        assert len(cache) > 0

    def test_batch_engine_backend_and_cache(self, taxi_users, facilities):
        plain = BatchQueryEngine(taxi_users).run(
            [(f, COUNT) for f in facilities[:3]]
        )
        cache = CoverageCache()
        engine, warned = _call_counting_warnings(
            lambda: BatchQueryEngine(
                taxi_users, backend=ProximityBackend.GRID, cache=cache
            )
        )
        assert len(warned) == 1  # warned at construction
        got = engine.run([(f, COUNT) for f in facilities[:3]])
        assert got.scores == plain.scores
        assert engine.cache is cache
        assert len(cache) > 0


class TestModernPathsNeverWarn:
    """The flip side: runtime-first calls must be warning-free, so the
    shims stay shims instead of becoming load-bearing."""

    def test_runtime_paths_are_clean(self, tree, taxi_users, facilities):
        from repro import QueryRuntime

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            with QueryRuntime() as rt:
                evaluate_service(tree, facilities[0], SPEC, runtime=rt)
                top_k_facilities(tree, facilities, 2, SPEC, runtime=rt)
                maxkcov_tq(tree, facilities, 2, SPEC, runtime=rt)
                BatchQueryEngine(taxi_users, runtime=rt).run(
                    [(facilities[0], COUNT)]
                )
        assert not _deprecations(record)
