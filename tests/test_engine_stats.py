"""Regression guard: the engine path must do strictly less geometric
work than the dense path on a realistic workload.

If a refactor silently degrades the grid (wrong cell size, candidate
over-gathering, fallback always firing) the results would stay correct
— the engine is bit-identical by construction — but these counters
would stop shrinking.  Pinning the *work*, not just the answers, keeps
the optimisation honest.
"""

from __future__ import annotations

import pytest

from repro import (
    BatchQueryEngine,
    CityModel,
    CoverageCache,
    ProximityBackend,
    QueryStats,
    ServiceModel,
    ServiceSpec,
    TQTree,
    TQTreeConfig,
    generate_bus_routes,
    generate_taxi_trips,
)
from repro.queries import evaluate_service


@pytest.fixture(scope="module")
def workload():
    """A seeded mid-size city: enough stops that the grid must win."""
    city = CityModel.generate(seed=42, size=12_000.0)
    users = generate_taxi_trips(1500, city, seed=101)
    facs = generate_bus_routes(6, city, seed=104, n_stops=200)
    return users, facs


class TestBatchEngineCounters:
    def test_grid_strictly_reduces_work(self, workload):
        users, facs = workload
        spec = ServiceSpec(ServiceModel.COUNT, psi=150.0)
        requests = [(f, spec) for f in facs]
        dense = BatchQueryEngine(users, backend=ProximityBackend.DENSE).run(requests)
        grid = BatchQueryEngine(users, backend=ProximityBackend.GRID).run(requests)
        assert grid.scores == dense.scores
        # the guarded counters: points scanned and distances evaluated
        assert grid.stats.points_scanned < dense.stats.points_scanned
        assert grid.stats.distance_evals < dense.stats.distance_evals
        # and not marginally: the dense path does all-pairs work
        assert grid.stats.distance_evals * 10 < dense.stats.distance_evals
        assert grid.stats.cells_probed > 0
        assert dense.stats.cells_probed == 0  # dense path never buckets

    def test_auto_backend_matches_grid_on_dense_stops(self, workload):
        users, facs = workload
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=150.0)
        requests = [(f, spec) for f in facs]
        auto = BatchQueryEngine(users, backend=ProximityBackend.AUTO).run(requests)
        dense = BatchQueryEngine(users, backend=ProximityBackend.DENSE).run(requests)
        assert auto.scores == dense.scores
        # 200 stops/facility is far above AUTO_MIN_STOPS: grid engaged
        assert auto.stats.distance_evals < dense.stats.distance_evals

    def test_mask_sharing_across_models(self, workload):
        users, facs = workload
        engine = BatchQueryEngine(users, backend=ProximityBackend.GRID)
        requests = [
            (f, ServiceSpec(model, psi=150.0))
            for f in facs
            for model in ServiceModel
        ]
        result = engine.run(requests)
        # one mask per facility; the other two models hit the cache
        assert result.stats.cache_hits == 2 * len(facs)


class TestTreePathCounters:
    def test_grid_backend_reduces_tree_distance_work(self, workload):
        users, facs = workload
        tree = TQTree.build(users, TQTreeConfig(beta=32))
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=150.0)
        dense_stats = QueryStats()
        grid_stats = QueryStats()
        for f in facs:
            a = evaluate_service(tree, f, spec, stats=dense_stats)
            b = evaluate_service(
                tree, f, spec, stats=grid_stats,
                backend=ProximityBackend.GRID,
            )
            assert a == b
        # identical navigation, strictly less geometry
        assert grid_stats.nodes_visited == dense_stats.nodes_visited
        assert grid_stats.entries_scored == dense_stats.entries_scored
        assert grid_stats.distance_evals < dense_stats.distance_evals

    def test_cache_eliminates_repeat_distance_work(self, workload):
        users, facs = workload
        tree = TQTree.build(users, TQTreeConfig(beta=32))
        spec = ServiceSpec(ServiceModel.COUNT, psi=150.0)
        cache = CoverageCache()
        first = QueryStats()
        for f in facs:
            evaluate_service(
                tree, f, spec, stats=first,
                backend=ProximityBackend.GRID, cache=cache,
            )
        repeat = QueryStats()
        for f in facs:
            evaluate_service(
                tree, f, spec, stats=repeat,
                backend=ProximityBackend.GRID, cache=cache,
            )
        assert repeat.distance_evals == 0  # everything served from cache
        assert repeat.cache_hits > 0

    def test_merge_aggregates_counters(self):
        a = QueryStats(nodes_visited=1, distance_evals=10, cache_hits=2)
        b = QueryStats(nodes_visited=2, distance_evals=5, points_scanned=7)
        a.merge(b)
        assert a.nodes_visited == 3
        assert a.distance_evals == 15
        assert a.points_scanned == 7
        assert a.cache_hits == 2
