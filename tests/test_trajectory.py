"""Unit tests for repro.core.trajectory."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FacilityRoute, Point, Trajectory, TrajectoryError


class TestTrajectory:
    def test_basic_properties(self):
        t = Trajectory(1, [(0, 0), (3, 4), (3, 8)])
        assert t.traj_id == 1
        assert t.n_points == 3
        assert t.start == Point(0, 0)
        assert t.end == Point(3, 8)
        assert t.length == pytest.approx(9.0)
        assert t.n_segments == 2

    def test_accepts_point_objects(self):
        t = Trajectory(2, [Point(1, 1), Point(2, 2)])
        assert t.points == (Point(1, 1), Point(2, 2))

    def test_single_point(self):
        t = Trajectory(0, [(5, 5)])
        assert t.start == t.end == Point(5, 5)
        assert t.length == 0.0
        assert t.n_segments == 0

    def test_empty_rejected(self):
        with pytest.raises(TrajectoryError):
            Trajectory(0, [])

    def test_malformed_point_rejected(self):
        with pytest.raises(TrajectoryError):
            Trajectory(0, [(1, 2, 3)])
        with pytest.raises(TrajectoryError):
            Trajectory(0, ["ab"])

    def test_non_finite_rejected(self):
        with pytest.raises(TrajectoryError):
            Trajectory(0, [(float("nan"), 1)])

    def test_coords_shape_and_readonly(self):
        t = Trajectory(1, [(0, 0), (1, 1)])
        assert t.coords.shape == (2, 2)
        with pytest.raises(ValueError):
            t.coords[0, 0] = 9.0

    def test_segment_lengths(self):
        t = Trajectory(1, [(0, 0), (3, 4), (3, 4)])
        assert t.segment_lengths == (5.0, 0.0)

    def test_segment_accessor(self):
        t = Trajectory(1, [(0, 0), (1, 0), (1, 1)])
        assert t.segment(1) == (Point(1, 0), Point(1, 1))
        with pytest.raises(TrajectoryError):
            t.segment(2)
        with pytest.raises(TrajectoryError):
            t.segment(-1)

    def test_bbox(self):
        t = Trajectory(1, [(0, 5), (4, 1)])
        assert t.bbox.xmin == 0 and t.bbox.ymax == 5

    def test_len_and_iter(self):
        t = Trajectory(1, [(0, 0), (1, 1), (2, 2)])
        assert len(t) == 3
        assert list(t) == [Point(0, 0), Point(1, 1), Point(2, 2)]

    def test_equality_and_hash(self):
        a = Trajectory(1, [(0, 0), (1, 1)])
        b = Trajectory(1, [(0, 0), (1, 1)])
        c = Trajectory(2, [(0, 0), (1, 1)])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr_mentions_id(self):
        assert "id=7" in repr(Trajectory(7, [(0, 0)]))


class TestFacilityRoute:
    def test_basic_properties(self):
        f = FacilityRoute(3, [(0, 0), (10, 0), (10, 10)])
        assert f.facility_id == 3
        assert f.n_stops == 3
        assert f.route_length == pytest.approx(20.0)

    def test_embr_expansion(self):
        f = FacilityRoute(0, [(0, 0), (10, 10)])
        embr = f.embr(5.0)
        assert (embr.xmin, embr.ymin, embr.xmax, embr.ymax) == (-5, -5, 15, 15)

    def test_empty_rejected(self):
        with pytest.raises(TrajectoryError):
            FacilityRoute(0, [])

    def test_stop_coords_readonly(self):
        f = FacilityRoute(0, [(0, 0)])
        with pytest.raises(ValueError):
            f.stop_coords[0, 0] = 1.0

    def test_equality(self):
        assert FacilityRoute(1, [(0, 0)]) == FacilityRoute(1, [(0, 0)])
        assert FacilityRoute(1, [(0, 0)]) != FacilityRoute(1, [(1, 0)])

    def test_iter_and_len(self):
        f = FacilityRoute(1, [(0, 0), (1, 1)])
        assert len(f) == 2
        assert list(f)[1] == Point(1, 1)

    def test_coords_match_stops(self):
        f = FacilityRoute(1, [(0, 1), (2, 3)])
        np.testing.assert_array_equal(f.stop_coords, [[0, 1], [2, 3]])
