"""Unit and property tests for the z-ordered bucket lists (zReduce)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BBox, IndexVariant, Point, Trajectory
from repro.core.errors import IndexError_
from repro.index.entries import make_entries
from repro.index.zindex import ZOrderedList

from .strategies import WORLD, trajectory_sets


def entries_of(users, variant=IndexVariant.ENDPOINT):
    out = []
    for u in users:
        out.extend(make_entries(u, variant))
    return out


def build(users, beta=4, variant=IndexVariant.ENDPOINT):
    return ZOrderedList(WORLD, entries_of(users, variant), beta=beta)


def users_grid(n):
    return [
        Trajectory(i, [((i * 97) % 1000, (i * 61) % 1000), ((i * 31) % 1000, (i * 43) % 1000)])
        for i in range(n)
    ]


def stops_array(points):
    return np.array([(p.x, p.y) for p in points], dtype=np.float64)


def embr_of(stops, psi):
    xs = [p.x for p in stops]
    ys = [p.y for p in stops]
    return BBox(min(xs) - psi, min(ys) - psi, max(xs) + psi, max(ys) + psi)


class TestConstruction:
    def test_beta_validated(self):
        with pytest.raises(IndexError_):
            ZOrderedList(WORLD, [], beta=0)

    def test_empty_list(self):
        zl = ZOrderedList(WORLD, [], beta=4)
        assert len(zl) == 0
        assert zl.n_buckets == 0
        assert zl.candidates_both(WORLD) == []

    def test_bucket_capacity_respected(self):
        zl = build(users_grid(50), beta=4)
        assert all(size <= 4 for size in zl.bucket_sizes())
        assert sum(zl.bucket_sizes()) == 50

    def test_entries_sorted_by_zid_pairs(self):
        zl = build(users_grid(40), beta=4)
        keys = zl._keys
        assert keys == sorted(keys)

    def test_end_ids_disambiguated_where_possible(self):
        """With disambiguation enabled, entries sharing a start cell get
        distinct end ids (distinct end points, generous depth)."""
        users = [
            Trajectory(0, [(10, 10), (800, 100)]),
            Trajectory(1, [(11, 11), (100, 800)]),
            Trajectory(2, [(12, 12), (500, 500)]),
        ]
        zl = ZOrderedList(
            WORLD, entries_of(users), beta=4, disambiguation_passes=8
        )
        by_start = {}
        for (s, e, _id) in zl._keys:
            by_start.setdefault(s, []).append(e)
        for ends in by_start.values():
            assert len(set(ends)) == len(ends)

    def test_identical_pairs_terminate(self):
        """Duplicate (start, end) pairs cannot be separated; the depth cap
        must stop refinement rather than loop."""
        users = [Trajectory(i, [(5, 5), (900, 900)]) for i in range(6)]
        zl = ZOrderedList(
            WORLD, entries_of(users), beta=2, z_max_depth=5,
            disambiguation_passes=10,
        )
        assert len(zl) == 6


def _served_endpoint(entry, stops_pts, psi):
    def near(p):
        return any(p.dist_to(s) <= psi for s in stops_pts)

    return near(entry.traj.start) and near(entry.traj.end)


class TestCandidateModes:
    def test_both_mode_is_sound_for_endpoint_service(self):
        users = users_grid(60)
        zl = build(users, beta=4)
        stops = [Point(200, 200), Point(600, 600)]
        psi = 150.0
        cands = {
            e.entry_id
            for e in zl.candidates_both(embr_of(stops, psi), stops_array(stops), psi)
        }
        for e in entries_of(users):
            if _served_endpoint(e, stops, psi):
                assert e.entry_id in cands

    def test_both_without_stops_uses_embr_only(self):
        users = users_grid(60)
        zl = build(users, beta=4)
        box = BBox(100, 100, 400, 400)
        loose = {e.entry_id for e in zl.candidates_both(box)}
        stops = [Point(250, 250)]
        tight = {
            e.entry_id
            for e in zl.candidates_both(box, stops_array(stops), 150.0)
        }
        assert tight <= loose

    def test_any_mode_superset_of_both(self):
        users = users_grid(60)
        zl = build(users, beta=4)
        box = BBox(100, 100, 400, 400)
        both = {e.entry_id for e in zl.candidates_both(box)}
        any_ = {e.entry_id for e in zl.candidates_any(box)}
        assert both <= any_

    def test_any_mode_catches_single_endpoint(self):
        users = [
            Trajectory(0, [(10, 10), (990, 990)]),  # start in box only
            Trajectory(1, [(990, 10), (15, 15)]),  # end in box only
            Trajectory(2, [(900, 900), (950, 950)]),  # neither
        ]
        zl = build(users, beta=2)
        ids = {e.traj.traj_id for e in zl.candidates_any(BBox(0, 0, 100, 100))}
        assert {0, 1} <= ids

    def test_bbox_mode_sound_for_full_entries(self):
        """A FULL entry whose interior dips into the box is found even
        when both endpoints are far away."""
        detour = Trajectory(0, [(900, 900), (50, 50), (950, 950)])
        far = Trajectory(1, [(800, 800), (820, 820)])
        zl = ZOrderedList(
            WORLD,
            entries_of([detour, far], IndexVariant.FULL),
            beta=2,
        )
        box = BBox(0, 0, 100, 100)
        ids = {e.traj.traj_id for e in zl.candidates_bbox(box)}
        assert 0 in ids
        assert 1 not in ids

    def test_empty_stop_set_disc_filter(self):
        zl = build(users_grid(30), beta=4)
        got = zl.candidates_both(WORLD, np.zeros((0, 2)), 10.0)
        # with no stops the EMBR-only filter applies (stops given but empty)
        assert isinstance(got, list)

    @settings(max_examples=40)
    @given(trajectory_sets(min_size=1, max_size=25, min_points=2, max_points=2))
    def test_zreduce_soundness_property(self, users):
        """The central invariant: zReduce (both-mode) never prunes an
        entry that endpoint service would count."""
        zl = ZOrderedList(WORLD, entries_of(users), beta=3)
        stops = [Point(300, 300), Point(700, 200)]
        psi = 120.0
        cands = {
            e.entry_id
            for e in zl.candidates_both(embr_of(stops, psi), stops_array(stops), psi)
        }
        for e in entries_of(users):
            if _served_endpoint(e, stops, psi):
                assert e.entry_id in cands

    @settings(max_examples=40)
    @given(trajectory_sets(min_size=1, max_size=25, min_points=2, max_points=5))
    def test_any_mode_soundness_for_point_coverage(self, users):
        """Any-mode must keep every segmented entry with a covered
        governing point."""
        entries = entries_of(users, IndexVariant.SEGMENTED)
        zl = ZOrderedList(WORLD, entries, beta=3)
        stops = [Point(500, 500)]
        psi = 200.0
        cands = {
            e.entry_id
            for e in zl.candidates_any(embr_of(stops, psi), stops_array(stops), psi)
        }
        for e in entries:
            start_near = any(e.gov_start.dist_to(s) <= psi for s in stops)
            end_near = any(e.gov_end.dist_to(s) <= psi for s in stops)
            if start_near or end_near:
                assert e.entry_id in cands

    @settings(max_examples=40)
    @given(trajectory_sets(min_size=1, max_size=20, min_points=2, max_points=6))
    def test_bbox_mode_soundness_for_full(self, users):
        entries = entries_of(users, IndexVariant.FULL)
        zl = ZOrderedList(WORLD, entries, beta=3)
        box = BBox(200, 200, 600, 600)
        cands = {e.entry_id for e in zl.candidates_bbox(box)}
        for e in entries:
            if any(box.contains_point(p) for p in e.traj.points):
                assert e.entry_id in cands
