"""Round-trip and failure tests for the CSV I/O layer."""

from __future__ import annotations

import pytest

from repro import (
    CityModel,
    DatasetError,
    FacilityRoute,
    Trajectory,
    generate_bus_routes,
    generate_checkin_trajectories,
    load_facilities,
    load_trajectories,
    save_facilities,
    save_trajectories,
)


class TestTrajectoryRoundTrip:
    def test_round_trip_exact(self, tmp_path):
        city = CityModel.generate(seed=1, size=5000.0)
        users = generate_checkin_trajectories(20, city, seed=2)
        path = tmp_path / "users.csv"
        save_trajectories(users, path)
        assert load_trajectories(path) == users

    def test_round_trip_preserves_float_precision(self, tmp_path):
        t = Trajectory(0, [(1 / 3, 2 / 7), (0.1 + 0.2, 1e-17 + 5.0)])
        path = tmp_path / "t.csv"
        save_trajectories([t], path)
        assert load_trajectories(path) == [t]

    def test_empty_file_round_trip(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_trajectories([], path)
        assert load_trajectories(path) == []

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,0,2.0,3.0\n")
        with pytest.raises(DatasetError):
            load_trajectories(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("traj_id,point_idx,x,y\n1,zero,2.0,3.0\n")
        with pytest.raises(DatasetError):
            load_trajectories(path)

    def test_wrong_column_count_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("traj_id,point_idx,x,y\n1,0,2.0\n")
        with pytest.raises(DatasetError):
            load_trajectories(path)

    def test_gap_in_point_indices_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("traj_id,point_idx,x,y\n1,0,2.0,3.0\n1,2,4.0,5.0\n")
        with pytest.raises(DatasetError):
            load_trajectories(path)

    def test_rows_reassembled_out_of_order(self, tmp_path):
        path = tmp_path / "shuffled.csv"
        path.write_text(
            "traj_id,point_idx,x,y\n"
            "0,1,10.0,10.0\n"
            "1,0,5.0,5.0\n"
            "0,0,1.0,1.0\n"
            "1,1,6.0,6.0\n"
        )
        got = load_trajectories(path)
        assert got == [
            Trajectory(0, [(1.0, 1.0), (10.0, 10.0)]),
            Trajectory(1, [(5.0, 5.0), (6.0, 6.0)]),
        ]


class TestFacilityRoundTrip:
    def test_round_trip_exact(self, tmp_path):
        city = CityModel.generate(seed=1, size=20_000.0)
        routes = generate_bus_routes(6, city, seed=3, n_stops=12)
        path = tmp_path / "routes.csv"
        save_facilities(routes, path)
        assert load_facilities(path) == routes

    def test_single_stop_facility(self, tmp_path):
        f = FacilityRoute(7, [(1.5, 2.5)])
        path = tmp_path / "f.csv"
        save_facilities([f], path)
        assert load_facilities(path) == [f]

    def test_gap_in_stop_indices_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("traj_id,point_idx,x,y\n1,1,2.0,3.0\n")
        with pytest.raises(DatasetError):
            load_facilities(path)
