"""Differential suite for the asyncio serving layer (ISSUE 4).

The contract: :class:`repro.service.QueryService` never changes an
answer or a counter.  For every request type × execution policy, the
service's :class:`QueryResult.value` and per-request ``stats`` must be
``==`` to what the synchronous functions produce when called in
submission order against an identically configured runtime, and the
service runtime's merged grand total must equal the sequential
baseline's.  On top of parity: admission control (bounded queue),
cross-request coalescing (shared probe units execute in submission
order, later requests ride earlier masks), and the asyncio bridge
(no event-loop-blocking callbacks even under 32 concurrent mixed
requests, asserted in debug mode).
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import multiprocessing
import threading
import time

import pytest

from repro import (
    EvaluateRequest,
    ExactMaxKCovRequest,
    GeneticMaxKCovRequest,
    KMaxRRSTRequest,
    MaxKCovRequest,
    ProximityBackend,
    QueryRuntime,
    QueryService,
    QueryStats,
    RuntimeConfig,
    ServiceConfig,
    ServiceModel,
    ServiceOverloaded,
    ServiceSpec,
    TQTree,
    TQTreeConfig,
    evaluate_service,
    exact_max_k_coverage,
    genetic_max_k_coverage,
    maxkcov_tq,
    top_k_facilities,
)
from repro.core.errors import QueryError
from repro.queries.evaluate import MatchCollector
from repro.queries.maxkcov import tq_match_fn
from repro.service import QueryPlanner

PSI = 400.0
COUNT = ServiceSpec(ServiceModel.COUNT, psi=PSI)
ENDPOINT = ServiceSpec(ServiceModel.ENDPOINT, psi=PSI)
LENGTH = ServiceSpec(ServiceModel.LENGTH, psi=PSI)

#: The acceptance matrix: every policy the runtime schedules under.
POLICIES = ("serial", "threads", "processes")


def _config(policy: str) -> RuntimeConfig:
    return RuntimeConfig(
        backend=ProximityBackend.GRID, policy=policy, shards=2, max_workers=2
    )


@pytest.fixture(scope="module")
def tree(taxi_users):
    return TQTree.build(taxi_users, TQTreeConfig(beta=16))


def _mixed_requests(tree, facilities):
    """One of everything, with deliberate probe-unit overlap."""
    subset = tuple(facilities[:5])
    return [
        EvaluateRequest(tree, facilities[0], COUNT),
        EvaluateRequest(tree, facilities[1], ENDPOINT),
        EvaluateRequest(tree, facilities[0], COUNT),  # exact duplicate
        EvaluateRequest(tree, facilities[2], LENGTH, collect_matches=True),
        KMaxRRSTRequest(tree, tuple(facilities), 3, ENDPOINT),
        MaxKCovRequest(tree, tuple(facilities), 2, ENDPOINT),
        ExactMaxKCovRequest(tree, subset, 2, ENDPOINT),
        GeneticMaxKCovRequest(tree, subset, 2, ENDPOINT),
        EvaluateRequest(tree, facilities[3], COUNT),
    ]


def _sync_baseline(requests, runtime):
    """The synchronous answers, called in submission order against one
    shared runtime — the sequential schedule the service's coalescing
    order is provably equivalent to.  Returns (values, per-request
    stats deltas) with stats read exactly as a sync caller would."""
    values = []
    deltas = []
    for req in requests:
        before = dataclasses.replace(runtime.stats)
        if isinstance(req, EvaluateRequest):
            stats = QueryStats()
            collector = MatchCollector() if req.collect_matches else None
            value = evaluate_service(
                req.tree, req.facility, req.spec,
                collector=collector, stats=stats, runtime=runtime,
            )
            values.append(
                (value, collector.as_dict() if collector else None)
            )
            deltas.append(stats)
            continue
        if isinstance(req, KMaxRRSTRequest):
            result = top_k_facilities(
                req.tree, req.facilities, req.k, req.spec, runtime=runtime
            )
            values.append(result)
            deltas.append(result.stats)
            continue
        if isinstance(req, MaxKCovRequest):
            result = maxkcov_tq(
                req.tree, req.facilities, req.k, req.spec,
                req.prune_factor, runtime=runtime,
            )
        elif isinstance(req, ExactMaxKCovRequest):
            result = exact_max_k_coverage(
                list(req.tree.trajectories()), req.facilities, req.k,
                req.spec, tq_match_fn(req.tree, req.spec, runtime=runtime),
                runtime=runtime,
            )
        else:
            result = genetic_max_k_coverage(
                list(req.tree.trajectories()), req.facilities, req.k,
                req.spec, tq_match_fn(req.tree, req.spec, runtime=runtime),
                req.config, runtime=runtime,
            )
        values.append(result)
        # solvers report no stats object; the runtime delta is the
        # per-request attribution a sync caller can observe
        after = runtime.stats
        deltas.append(
            QueryStats(**{
                f.name: getattr(after, f.name) - getattr(before, f.name)
                for f in dataclasses.fields(QueryStats)
            })
        )
    return values, deltas


def _assert_result_equal(req, result, expected, expected_stats):
    if isinstance(req, EvaluateRequest):
        value, matches = expected
        assert result.value == value
        assert result.matches == matches
    elif isinstance(req, KMaxRRSTRequest):
        assert result.value.ranking == expected.ranking
    else:
        assert result.value.facility_ids() == expected.facility_ids()
        assert result.value.combined_service == expected.combined_service
        assert result.value.users_fully_served == expected.users_fully_served
        assert result.value.step_gains == expected.step_gains
    assert result.stats == expected_stats


def _assert_outcomes_sum(stats):
    """The ServiceStats outcome invariant (pinned across every
    cancellation-wave test): once a workload drains, every admitted
    request has settled into exactly one outcome counter."""
    assert (
        stats.requests_completed
        + stats.requests_failed
        + stats.requests_cancelled
        == stats.requests_submitted
    )


class TestServiceDifferential:
    """Service answers == synchronous answers, per request and in total,
    for all five request types under every execution policy."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_mixed_requests_bit_identical(self, policy, tree, facilities):
        requests = _mixed_requests(tree, facilities)
        with QueryRuntime(_config(policy)) as base_rt:
            base_values, base_deltas = _sync_baseline(requests, base_rt)
            base_total = dataclasses.replace(base_rt.stats)

        async def drive():
            with QueryRuntime(_config(policy)) as rt:
                async with QueryService(
                    rt, ServiceConfig(max_in_flight=4)
                ) as service:
                    results = await service.run(requests)
                total = dataclasses.replace(rt.stats)
            return results, total

        results, total = asyncio.run(drive())
        for req, result, expected, delta in zip(
            requests, results, base_values, base_deltas
        ):
            assert result.request is req
            _assert_result_equal(req, result, expected, delta)
        assert total == base_total

    def test_repeat_submission_is_deterministic(self, tree, facilities):
        """Two service runs of the same workload agree exactly —
        scheduling noise never reaches answers or stats."""
        requests = _mixed_requests(tree, facilities)

        def one_run():
            async def drive():
                with QueryRuntime(_config("threads")) as rt:
                    async with QueryService(rt) as service:
                        results = await service.run(requests)
                    return (
                        [(r.value, r.stats) for r in results],
                        dataclasses.replace(rt.stats),
                    )

            return asyncio.run(drive())

        first, first_total = one_run()
        second, second_total = one_run()
        for (v1, s1), (v2, s2) in zip(first, second):
            if hasattr(v1, "ranking"):
                assert v1.ranking == v2.ranking
            elif hasattr(v1, "facility_ids"):
                assert v1.facility_ids() == v2.facility_ids()
            else:
                assert v1 == v2
            assert s1 == s2
        assert first_total == second_total


class TestCoalescing:
    def test_duplicate_requests_coalesce(self, tree, facilities):
        req = EvaluateRequest(tree, facilities[0], COUNT)

        async def drive():
            async with QueryService(QueryRuntime(_config("serial"))) as svc:
                results = await svc.run([req, req, req])
                return results, svc.stats

        results, stats = asyncio.run(drive())
        assert len({r.value for r in results}) == 1
        assert stats.probe_units_planned == 3
        # second and third submissions ride the first's probe work
        assert stats.probe_units_coalesced == 2
        assert stats.dedup_rate == pytest.approx(2 / 3)
        # the coalesced requests did no geometric work: masks were
        # served from the shared pass (cache hit, zero fresh probes)
        assert results[1].stats.points_scanned == 0
        assert results[1].stats.cache_hits > 0

    def test_disjoint_requests_do_not_coalesce(self, tree, facilities):
        reqs = [
            EvaluateRequest(tree, facilities[0], COUNT),
            EvaluateRequest(tree, facilities[1], COUNT),
        ]

        async def drive():
            async with QueryService(QueryRuntime(_config("serial"))) as svc:
                await svc.run(reqs)
                return svc.stats

        stats = asyncio.run(drive())
        assert stats.probe_units_planned == 2
        assert stats.probe_units_coalesced == 0

    def test_coalesce_window_delays_but_preserves_answers(
        self, tree, facilities
    ):
        req = EvaluateRequest(tree, facilities[0], COUNT)
        plain = evaluate_service(tree, facilities[0], COUNT)

        async def drive():
            config = ServiceConfig(coalesce_window=0.01)
            async with QueryService(
                QueryRuntime(_config("serial")), config
            ) as svc:
                return await svc.submit(req)

        assert asyncio.run(drive()).value == plain


class TestAdmissionControl:
    def test_queue_depth_rejects_overflow(self, tree, facilities):
        requests = [
            EvaluateRequest(tree, facilities[i % len(facilities)], COUNT)
            for i in range(6)
        ]

        async def drive():
            config = ServiceConfig(max_in_flight=1, queue_depth=2)
            async with QueryService(
                QueryRuntime(_config("serial")), config
            ) as svc:
                outcomes = await asyncio.gather(
                    *(svc.submit(r) for r in requests),
                    return_exceptions=True,
                )
                return outcomes, svc.stats

        outcomes, stats = asyncio.run(drive())
        rejected = [o for o in outcomes if isinstance(o, ServiceOverloaded)]
        completed = [o for o in outcomes if not isinstance(o, Exception)]
        assert len(rejected) == 4  # admissions beyond queue_depth=2
        assert len(completed) == 2
        assert stats.requests_rejected == 4
        assert stats.requests_completed == 2

    def test_run_awaits_admitted_siblings_on_overflow(self, tree, facilities):
        """An overflow inside run() must not abandon admitted siblings:
        every admitted request completes (and is accrued) before the
        first rejection propagates."""
        requests = [
            EvaluateRequest(tree, facilities[i % len(facilities)], COUNT)
            for i in range(6)
        ]

        async def drive():
            with QueryRuntime(_config("serial")) as rt:
                async with QueryService(
                    rt, ServiceConfig(max_in_flight=1, queue_depth=2)
                ) as svc:
                    with pytest.raises(ServiceOverloaded):
                        await svc.run(requests)
                    return svc.stats

        stats = asyncio.run(drive())
        assert stats.requests_rejected == 4
        assert stats.requests_completed == 2  # siblings ran to completion
        assert stats.requests_failed == 0  # none died on a shut-down pool

    def test_submit_rechecks_closed_after_waiting(self, tree, facilities):
        """A request admitted before close() but still waiting on a
        predecessor when it runs must fail with the documented
        QueryError, not schedule on the shut-down bridge pool."""
        req = EvaluateRequest(tree, facilities[0], COUNT)

        async def drive():
            with QueryRuntime(_config("serial")) as rt:
                svc = QueryService(rt)
                await svc.submit(req)  # binds the loop
                loop = asyncio.get_running_loop()
                gate = loop.create_future()
                for unit in svc.planner.plan(req).units:
                    svc._tails[unit] = gate  # plant a live predecessor
                task = asyncio.ensure_future(svc.submit(req))
                for _ in range(4):
                    await asyncio.sleep(0)  # let the task block on gate
                assert not task.done()
                svc.close()
                gate.set_result(None)
                with pytest.raises(QueryError, match="closed"):
                    await task

        asyncio.run(drive())

    def test_cancelled_waiter_leaves_shared_schedule_intact(
        self, tree, facilities
    ):
        """A timed-out coalesced submit must not cancel the shared
        predecessor future, leak its admission slot, release successors
        past the still-running chain head, or vanish from the stats."""
        req = EvaluateRequest(tree, facilities[0], COUNT)

        async def drive():
            with QueryRuntime(_config("serial")) as rt:
                async with QueryService(rt) as svc:
                    await svc.submit(req)  # binds the loop
                    loop = asyncio.get_running_loop()
                    gate = loop.create_future()  # the in-flight "head"
                    for unit in svc.planner.plan(req).units:
                        svc._tails[unit] = gate
                    victim = asyncio.ensure_future(
                        asyncio.wait_for(svc.submit(req), timeout=0.01)
                    )
                    await asyncio.sleep(0)  # let victim register first
                    successor = asyncio.ensure_future(svc.submit(req))
                    with pytest.raises(asyncio.TimeoutError):
                        await victim
                    # the cancel stayed local: the shared predecessor
                    # future the victim was gathering on survives
                    assert not gate.cancelled()
                    # and the successor stays ordered behind the chain
                    # head even though its direct predecessor (the
                    # victim) is already gone
                    for _ in range(4):
                        await asyncio.sleep(0)
                    assert not successor.done()
                    gate.set_result(None)
                    result = await successor
                    assert svc.in_flight == 0  # no admission-slot leak
                    return result, svc.stats

        result, stats = asyncio.run(drive())
        assert result.value == evaluate_service(tree, facilities[0], COUNT)
        assert stats.requests_cancelled == 1
        assert stats.requests_failed == 0
        # every admitted request settled into exactly one outcome
        _assert_outcomes_sum(stats)

    def test_cancelled_request_frees_admission_capacity(
        self, tree, facilities
    ):
        """Cancellations must hand their queue slots back: a full wave
        of timed-out requests may not push the service into rejecting
        everything afterwards (the admission-leak regression)."""
        req = EvaluateRequest(tree, facilities[0], COUNT)

        async def drive():
            config = ServiceConfig(max_in_flight=1, queue_depth=2)
            with QueryRuntime(_config("serial")) as rt:
                async with QueryService(rt, config) as svc:
                    await svc.submit(req)
                    loop = asyncio.get_running_loop()
                    for _ in range(3):  # fill and drain the queue
                        gate = loop.create_future()
                        for unit in svc.planner.plan(req).units:
                            svc._tails[unit] = gate
                        waiters = [
                            asyncio.ensure_future(
                                asyncio.wait_for(svc.submit(req), 0.01)
                            )
                            for _ in range(config.queue_depth)
                        ]
                        outcomes = await asyncio.gather(
                            *waiters, return_exceptions=True
                        )
                        assert all(
                            isinstance(o, asyncio.TimeoutError)
                            for o in outcomes
                        )
                        gate.set_result(None)
                        await asyncio.sleep(0)
                    assert svc.in_flight == 0
                    # capacity fully recovered: a fresh request is
                    # admitted and completes
                    result = await svc.submit(req)
                    return result, svc.stats

        result, stats = asyncio.run(drive())
        assert result.value == evaluate_service(tree, facilities[0], COUNT)
        assert stats.requests_cancelled == 6
        assert stats.requests_rejected == 0
        assert stats.requests_completed == 2
        _assert_outcomes_sum(stats)

    def test_dedup_not_counted_for_cancelled_predecessor(
        self, tree, facilities
    ):
        """probe_units_coalesced (the BENCH dedup metric) only counts
        units actually served from an executed chain member: riding a
        predecessor that was cancelled before its core ran is not
        sharing, because that predecessor computed nothing."""
        req = EvaluateRequest(tree, facilities[0], COUNT)
        blocker_req = EvaluateRequest(tree, facilities[1], COUNT)
        release = threading.Event()
        started = threading.Event()

        class GatedPlan:
            def __init__(self, inner):
                self.units = inner.units
                self._inner = inner

            def execute(self, runtime):
                started.set()
                assert release.wait(10)
                return self._inner.execute(runtime)

        async def drive():
            with QueryRuntime(_config("serial")) as rt:
                async with QueryService(
                    rt, ServiceConfig(max_in_flight=1)
                ) as svc:
                    planner = svc.planner
                    n_units = len(planner.plan(req).units)

                    class GatedPlanner:
                        gated = True  # only the blocker's plan is gated

                        def plan(self, r):
                            inner = planner.plan(r)
                            if GatedPlanner.gated:
                                GatedPlanner.gated = False
                                return GatedPlan(inner)
                            return inner

                    svc.planner = GatedPlanner()
                    # the blocker occupies the only bridge slot…
                    blocker = asyncio.ensure_future(svc.submit(blocker_req))
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(None, started.wait, 10)
                    # …so the victim claims its fresh units but parks at
                    # the semaphore, where we kill it pre-execution
                    victim = asyncio.ensure_future(svc.submit(req))
                    b = asyncio.ensure_future(svc.submit(req))
                    for _ in range(4):
                        await asyncio.sleep(0)
                    victim.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await victim
                    c = asyncio.ensure_future(svc.submit(req))
                    release.set()
                    await blocker
                    rb, rc = await asyncio.gather(b, c)
                    return rb, rc, n_units, svc.stats

        rb, rc, n_units, stats = asyncio.run(drive())
        plain = evaluate_service(tree, facilities[0], COUNT)
        assert rb.value == plain and rc.value == plain
        # b rode the cancelled victim and recomputed (no sharing);
        # only c, riding b's real work, counts
        assert stats.probe_units_coalesced == n_units
        _assert_outcomes_sum(stats)

    def test_cancel_during_execution_serializes_successor(
        self, tree, facilities
    ):
        """A cancel that lands while the core is already running cannot
        abandon the thread: the orphaned core must keep its bridge slot
        and its schedule position (successors wait for it), and its
        stats must be accrued when it finishes — runtime totals reflect
        the work that actually happened."""
        req = EvaluateRequest(tree, facilities[0], COUNT)
        release = threading.Event()
        started = threading.Event()
        events = []

        class RecordingPlan:
            def __init__(self, inner, label):
                self.units = inner.units
                self._inner = inner
                self._label = label

            def execute(self, runtime):
                events.append(f"{self._label}-start")
                if self._label == "victim":
                    started.set()
                    assert release.wait(10)
                out = self._inner.execute(runtime)
                events.append(f"{self._label}-end")
                return out

        async def drive():
            with QueryRuntime(_config("serial")) as rt:
                async with QueryService(
                    rt, ServiceConfig(max_in_flight=2)
                ) as svc:
                    planner = svc.planner

                    class GatedPlanner:
                        labels = iter(("victim", "successor"))

                        def plan(self, r):
                            return RecordingPlan(
                                planner.plan(r), next(self.labels)
                            )

                    svc.planner = GatedPlanner()
                    victim = asyncio.ensure_future(svc.submit(req))
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(None, started.wait, 10)
                    victim.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await victim
                    # max_in_flight=2: a free bridge slot exists, so only
                    # the done-future chain can (and must) hold this back
                    successor = asyncio.ensure_future(svc.submit(req))
                    for _ in range(6):
                        await asyncio.sleep(0)
                    assert not successor.done()
                    assert "successor-start" not in events
                    release.set()
                    result = await successor
                    assert svc.in_flight == 0
                    return result, svc.stats, dataclasses.replace(rt.stats)

        result, stats, totals = asyncio.run(drive())
        # strict serialization: the orphan ran to completion first
        assert events == [
            "victim-start", "victim-end", "successor-start", "successor-end"
        ]
        assert result.value == evaluate_service(tree, facilities[0], COUNT)
        assert stats.requests_cancelled == 1
        assert stats.requests_completed == 1
        _assert_outcomes_sum(stats)
        # the orphan's stats were accrued: totals equal a sequential
        # run of the same two queries on a fresh runtime
        with QueryRuntime(_config("serial")) as base_rt:
            _sync_baseline([req, req], base_rt)
            assert totals == base_rt.stats

    def test_base_exception_from_core_counted_failed(
        self, tree, facilities
    ):
        """Even a BaseException out of a core (SystemExit) must settle
        into an outcome counter, or the ServiceStats sum invariant
        breaks."""
        req = EvaluateRequest(tree, facilities[0], COUNT)

        async def drive():
            with QueryRuntime(_config("serial")) as rt:
                async with QueryService(rt) as svc:
                    planner = svc.planner

                    class ExplodingPlanner:
                        def plan(self, r):
                            inner = planner.plan(r)

                            class Plan:
                                units = inner.units

                                def execute(self, runtime):
                                    raise SystemExit(3)

                            return Plan()

                    svc.planner = ExplodingPlanner()
                    with pytest.raises(SystemExit):
                        await svc.submit(req)
                    return svc.stats

        stats = asyncio.run(drive())
        assert stats.requests_failed == 1
        _assert_outcomes_sum(stats)

    def test_config_validation(self):
        with pytest.raises(QueryError):
            ServiceConfig(max_in_flight=0)
        with pytest.raises(QueryError):
            ServiceConfig(queue_depth=0)
        with pytest.raises(QueryError):
            ServiceConfig(coalesce_window=-1.0)
        with pytest.raises(QueryError):
            ServiceConfig(coalesce_window=float("nan"))

    def test_closed_service_rejects_submissions(self, tree, facilities):
        service = QueryService()
        service.close()
        with pytest.raises(QueryError):
            asyncio.run(service.submit(EvaluateRequest(tree, facilities[0], COUNT)))

    def test_unknown_request_type_rejected(self):
        with pytest.raises(QueryError):
            QueryPlanner().plan(object())


class TestAsyncSmoke:
    """The ISSUE-4 CI smoke: 32 concurrent mixed requests, parity, and
    no event-loop blocking warnings in asyncio debug mode."""

    N_REQUESTS = 32

    def _smoke_requests(self, tree, facilities):
        requests = []
        for i in range(self.N_REQUESTS - 2):
            spec = (COUNT, ENDPOINT, LENGTH)[i % 3]
            requests.append(
                EvaluateRequest(tree, facilities[i % len(facilities)], spec)
            )
        requests.append(KMaxRRSTRequest(tree, tuple(facilities), 3, ENDPOINT))
        requests.append(MaxKCovRequest(tree, tuple(facilities), 2, ENDPOINT))
        return requests

    def test_32_concurrent_requests_parity_and_no_blocking(
        self, tree, facilities, caplog
    ):
        requests = self._smoke_requests(tree, facilities)
        with QueryRuntime(_config("threads")) as base_rt:
            base_values, base_deltas = _sync_baseline(requests, base_rt)
            base_total = dataclasses.replace(base_rt.stats)

        async def drive():
            loop = asyncio.get_running_loop()
            # surface any callback that holds the loop; the bridge keeps
            # query cores off-loop, so nothing should come close
            loop.set_debug(True)
            loop.slow_callback_duration = 0.5
            with QueryRuntime(_config("threads")) as rt:
                async with QueryService(
                    rt, ServiceConfig(max_in_flight=8)
                ) as service:
                    results = await service.run(requests)
                return results, dataclasses.replace(rt.stats), service.stats

        with caplog.at_level(logging.WARNING, logger="asyncio"):
            results, total, service_stats = asyncio.run(drive())
        blocking = [
            r for r in caplog.records if "Executing" in r.getMessage()
        ]
        assert not blocking, [r.getMessage() for r in blocking]
        for req, result, expected, delta in zip(
            requests, results, base_values, base_deltas
        ):
            _assert_result_equal(req, result, expected, delta)
        assert total == base_total
        assert service_stats.requests_completed == self.N_REQUESTS
        # facilities repeat across the 30 evaluates, so the workload
        # must exhibit real cross-request sharing
        assert service_stats.probe_units_coalesced > 0


class TestServiceLifecycle:
    def test_service_prepares_process_workers_eagerly(self):
        """Fork safety: a processes runtime handed to a service must
        have its workers launched at construction (from the clean,
        pre-bridge-thread state), not lazily from a bridge thread."""
        with QueryRuntime(_config("processes")) as rt:
            assert rt.policy_executor._pool is None  # lazy until prepared
            service = QueryService(rt)
            try:
                pool = rt.policy_executor._pool
                assert pool is not None
                # under fork — the hazard case — the first submit
                # launches EVERY worker before the pool's manager
                # thread exists (gh-90622 excludes fork from on-demand
                # spawning); spawn/forkserver launch on demand but
                # never fork() this multi-threaded parent
                expected = (
                    rt.policy_executor._workers
                    if multiprocessing.get_start_method() == "fork"
                    else 1
                )
                assert len(pool._processes) >= expected
            finally:
                service.close()

    def test_rebind_refused_while_orphaned_core_runs(self, tree, facilities):
        """A core kept running by a cancelled submission must block loop
        rebinding — a fresh loop would reset the unit table and let a
        new request race the orphan on shared units."""
        req = EvaluateRequest(tree, facilities[0], COUNT)
        release = threading.Event()
        started = threading.Event()

        class GatedPlan:
            def __init__(self, inner):
                self.units = inner.units
                self._inner = inner

            def execute(self, runtime):
                started.set()
                assert release.wait(10)
                return self._inner.execute(runtime)

        with QueryRuntime(_config("serial")) as rt:
            svc = QueryService(rt)
            planner = svc.planner

            class GatedPlanner:
                def plan(self, r):
                    return GatedPlan(planner.plan(r))

            svc.planner = GatedPlanner()

            async def cancel_mid_core():
                victim = asyncio.ensure_future(svc.submit(req))
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, started.wait, 10)
                victim.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await victim

            asyncio.run(cancel_mid_core())
            # loop #1 is gone; the orphan still runs on the bridge pool
            assert svc.in_flight == 0
            svc.planner = planner
            try:
                with pytest.raises(QueryError, match="another event loop"):
                    asyncio.run(svc.submit(req))
            finally:
                release.set()
            # once the orphan drains, rebinding works again
            deadline = time.monotonic() + 10
            while True:
                with svc._core_lock:
                    if svc._executing == 0:
                        break
                assert time.monotonic() < deadline
                time.sleep(0.005)
            result = asyncio.run(svc.submit(req))
            assert result.value == evaluate_service(
                tree, facilities[0], COUNT
            )
            svc.close()

    def test_service_reusable_across_event_loops(self, tree, facilities):
        req = EvaluateRequest(tree, facilities[0], COUNT)
        with QueryRuntime(_config("serial")) as rt:
            service = QueryService(rt)
            first = asyncio.run(service.submit(req))
            second = asyncio.run(service.submit(req))  # fresh loop, idle
            service.close()
        assert first.value == second.value

    def test_owned_runtime_closed_with_service(self):
        service = QueryService()
        runtime = service.runtime
        service.close()
        assert runtime.executor is None  # closed runtimes stay serial

    def test_caller_runtime_left_open(self):
        with QueryRuntime(RuntimeConfig(max_workers=2)) as rt:
            service = QueryService(rt)
            service.close()
            assert rt.executor is not None

    def test_stats_is_a_consistent_snapshot(self, tree, facilities):
        """The public ``stats`` accessor returns a copy: mutating (or
        even assigning through) a snapshot must never perturb the
        service's own accounting — the torn-counter / corruption
        regression the HTTP ``GET /stats`` endpoint would amplify."""
        req = EvaluateRequest(tree, facilities[0], COUNT)
        with QueryRuntime(_config("serial")) as rt:
            service = QueryService(rt)
            try:
                asyncio.run(service.submit(req))
                snapshot = service.stats
                assert snapshot.requests_completed == 1
                # fresh object per read, not the live instance
                assert snapshot is not service.stats
                # a caller scribbling on a snapshot changes nothing
                snapshot.requests_completed = 10_000
                snapshot.requests_submitted = -5
                assert service.stats.requests_completed == 1
                assert service.stats.requests_submitted == 1
                # the accessor is read-only: the live counters cannot be
                # replaced wholesale by assignment
                with pytest.raises(AttributeError):
                    service.stats = snapshot
                # counters keep accruing into the (private) live object
                asyncio.run(service.submit(req))
                assert service.stats.requests_completed == 2
                _assert_outcomes_sum(service.stats)
            finally:
                service.close()

    def test_service_value_property(self, tree, facilities):
        async def drive():
            async with QueryService(QueryRuntime(_config("serial"))) as svc:
                ev = await svc.submit(EvaluateRequest(tree, facilities[0], COUNT))
                cov = await svc.submit(
                    MaxKCovRequest(tree, tuple(facilities), 2, ENDPOINT)
                )
                top = await svc.submit(
                    KMaxRRSTRequest(tree, tuple(facilities), 2, ENDPOINT)
                )
                return ev, cov, top

        ev, cov, top = asyncio.run(drive())
        assert ev.service_value == ev.value
        assert cov.service_value == cov.value.combined_service
        with pytest.raises(QueryError):
            top.service_value


class TestEmptyFacilitiesValidation:
    """The empty-candidate-set bugfix: requests (and their sync entry
    points) must reject ``facilities=()`` eagerly, exactly like the
    ``k <= 0`` validation — previously construction succeeded and
    ``plan().execute()`` returned an empty ranking/fleet, which over
    HTTP becomes a 200 with an empty answer for a malformed request."""

    REQUEST_TYPES = (
        KMaxRRSTRequest,
        MaxKCovRequest,
        ExactMaxKCovRequest,
        GeneticMaxKCovRequest,
    )

    @pytest.mark.parametrize("request_type", REQUEST_TYPES)
    def test_request_construction_rejects_empty_facilities(
        self, request_type, tree
    ):
        with pytest.raises(QueryError, match="facilities must be non-empty"):
            request_type(tree, (), 3, ENDPOINT)
        # any empty iterable is rejected, not just the literal tuple
        with pytest.raises(QueryError, match="facilities must be non-empty"):
            request_type(tree, [], 3, ENDPOINT)
        with pytest.raises(QueryError, match="facilities must be non-empty"):
            request_type(tree, iter(()), 3, ENDPOINT)

    @pytest.mark.parametrize("request_type", REQUEST_TYPES)
    def test_single_facility_still_accepted(
        self, request_type, tree, facilities
    ):
        request = request_type(tree, (facilities[0],), 1, ENDPOINT)
        assert request.facilities == (facilities[0],)

    def test_sync_entry_points_mirror_the_check(self, tree, taxi_users):
        with pytest.raises(QueryError, match="facilities must be non-empty"):
            top_k_facilities(tree, [], 3, ENDPOINT)
        with pytest.raises(QueryError, match="facilities must be non-empty"):
            maxkcov_tq(tree, [], 2, ENDPOINT)
        with pytest.raises(QueryError, match="facilities must be non-empty"):
            exact_max_k_coverage(taxi_users, [], 2, ENDPOINT, lambda f: {})
        with pytest.raises(QueryError, match="facilities must be non-empty"):
            genetic_max_k_coverage(taxi_users, [], 2, ENDPOINT, lambda f: {})
