"""Tests for the genetic MaxkCovRST solver (Gn-TQ(Z))."""

from __future__ import annotations

import pytest

from repro import (
    FacilityRoute,
    GeneticConfig,
    QueryError,
    ServiceModel,
    ServiceSpec,
    TQTree,
    TQTreeConfig,
    Trajectory,
    brute_force_combined_service,
    build_tq_zorder,
    genetic_max_k_coverage,
    greedy_max_k_coverage,
)
from repro.queries import tq_match_fn

from .strategies import WORLD


class TestGeneticConfig:
    def test_defaults_follow_paper(self):
        assert GeneticConfig().iterations == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"iterations": -1},
            {"tournament_size": 0},
            {"crossover_rate": 1.5},
            {"mutation_rate": -0.1},
            {"elitism": 99},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(QueryError):
            GeneticConfig(**kwargs)


class TestGeneticSolver:
    def _setup(self, taxi_users, facilities, spec):
        tree = build_tq_zorder(taxi_users, beta=16)
        return tq_match_fn(tree, spec)

    def test_returns_k_subset(self, taxi_users, facilities, endpoint_spec):
        fn = self._setup(taxi_users, facilities, endpoint_spec)
        result = genetic_max_k_coverage(taxi_users, facilities, 3, endpoint_spec, fn)
        assert len(result.selection) == 3
        assert len(set(result.facility_ids())) == 3

    def test_value_is_exact_for_selection(self, taxi_users, facilities, endpoint_spec):
        fn = self._setup(taxi_users, facilities, endpoint_spec)
        result = genetic_max_k_coverage(taxi_users, facilities, 3, endpoint_spec, fn)
        assert result.combined_service == pytest.approx(
            brute_force_combined_service(
                taxi_users, list(result.selection), endpoint_spec
            )
        )

    def test_deterministic_under_seed(self, taxi_users, facilities, endpoint_spec):
        fn = self._setup(taxi_users, facilities, endpoint_spec)
        cfg = GeneticConfig(seed=42)
        a = genetic_max_k_coverage(taxi_users, facilities, 3, endpoint_spec, fn, cfg)
        b = genetic_max_k_coverage(taxi_users, facilities, 3, endpoint_spec, fn, cfg)
        assert a.facility_ids() == b.facility_ids()
        assert a.combined_service == b.combined_service

    def test_more_iterations_no_worse(self, taxi_users, facilities, endpoint_spec):
        """Elitism makes best fitness monotone in generations."""
        fn = self._setup(taxi_users, facilities, endpoint_spec)
        short = genetic_max_k_coverage(
            taxi_users, facilities, 3, endpoint_spec, fn, GeneticConfig(iterations=0, seed=5)
        )
        long = genetic_max_k_coverage(
            taxi_users, facilities, 3, endpoint_spec, fn, GeneticConfig(iterations=25, seed=5)
        )
        assert long.combined_service >= short.combined_service - 1e-9

    def test_k_equals_n_facilities(self, taxi_users, facilities, endpoint_spec):
        fn = self._setup(taxi_users, facilities, endpoint_spec)
        result = genetic_max_k_coverage(
            taxi_users, facilities, len(facilities), endpoint_spec, fn
        )
        assert len(result.selection) == len(facilities)

    def test_k_larger_than_n_clamped(self, taxi_users, facilities, endpoint_spec):
        fn = self._setup(taxi_users, facilities, endpoint_spec)
        result = genetic_max_k_coverage(
            taxi_users, facilities, len(facilities) + 5, endpoint_spec, fn
        )
        assert len(result.selection) == len(facilities)

    def test_empty_facilities_rejected(self, taxi_users, endpoint_spec):
        # an empty candidate set is a malformed query, not an empty
        # fleet (the serving-layer hardening fix)
        with pytest.raises(QueryError, match="facilities must be non-empty"):
            genetic_max_k_coverage(
                taxi_users, [], 3, endpoint_spec, lambda f: {}
            )

    def test_invalid_k(self, taxi_users, facilities, endpoint_spec):
        with pytest.raises(QueryError):
            genetic_max_k_coverage(taxi_users, facilities, 0, endpoint_spec, lambda f: {})

    def test_finds_obvious_optimum(self):
        """Tiny instance where one pair is clearly optimal: the GA with a
        healthy budget should find it."""
        users = [Trajectory(i, [(0, i * 10), (1000, i * 10)]) for i in range(8)]
        good_a = FacilityRoute(0, [(0, 40)])
        good_b = FacilityRoute(1, [(1000, 40)])
        decoys = [FacilityRoute(2 + i, [(500, 500 + i)]) for i in range(4)]
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=100.0)
        tree = TQTree.build(users, TQTreeConfig(beta=4), space=WORLD)
        result = genetic_max_k_coverage(
            users,
            [good_a, good_b, *decoys],
            2,
            spec,
            tq_match_fn(tree, spec),
            GeneticConfig(population_size=16, iterations=30, seed=3),
        )
        assert set(result.facility_ids()) == {0, 1}

    def test_never_beats_exact_optimum(self, taxi_users, facilities, endpoint_spec):
        """GA and greedy can outrank each other on a non-submodular
        objective, but neither may exceed the exact optimum."""
        from repro import exact_max_k_coverage

        fn = self._setup(taxi_users, facilities, endpoint_spec)
        ga = genetic_max_k_coverage(
            taxi_users, facilities, 3, endpoint_spec, fn, GeneticConfig(seed=1)
        )
        greedy = greedy_max_k_coverage(taxi_users, facilities, 3, endpoint_spec, fn)
        exact = exact_max_k_coverage(taxi_users, facilities, 3, endpoint_spec, fn)
        assert ga.combined_service <= exact.combined_service + 1e-9
        assert greedy.combined_service <= exact.combined_service + 1e-9
