"""Differential tests: the sharded grid must be *bit-identical* to the
dense ``core.service`` oracle, for every shard count.

Sharding is pure scheduling — each shard applies the same ``psi_hit``
kernel to a disjoint slice of grid cells and the mask union is
order-independent — so every comparison here is ``==`` / ``array_equal``,
never ``approx``.  The suite drives shard counts {1, 2, 7} across
Hypothesis-generated adversarial inputs (ties at exactly ``psi``, zero
radii, world-spanning radii), plus the structural edge cases: empty
shards (stops concentrated in fewer cells than shards) and stops
straddling shard boundaries.  Work accounting is held to the same
standard: per-shard ``QueryStats`` merged via ``QueryStats.merge`` must
equal an unsharded ``StopGrid`` run exactly.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings

from repro import (
    QueryStats,
    ShardedStopGrid,
    ShardedStopSet,
    ShardStore,
    StopGrid,
    StopSet,
)
from repro.core.errors import QueryError

from .strategies import WORLD, dense_facilities, engine_psis, trajectory_sets

SHARD_COUNTS = (1, 2, 7)


def _probe_block(users) -> np.ndarray:
    return np.concatenate([u.coords for u in users])


class TestShardedMaskOracle:
    """ShardedStopGrid / ShardedStopSet masks vs the dense broadcast."""

    @settings(max_examples=50, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=12, min_points=1, max_points=6),
        dense_facilities(min_stops=16, max_stops=96),
        engine_psis(),
    )
    def test_masks_bit_identical_all_shard_counts(self, users, facility, psi):
        dense = StopSet.of_facility(facility)
        block = _probe_block(users)
        expected = dense.covered_mask(block, psi)
        for n_shards in SHARD_COUNTS:
            grid = ShardedStopGrid(facility.stop_coords, psi, n_shards)
            assert np.array_equal(expected, grid.covered_mask(block, psi))
            sset = ShardedStopSet(facility.stop_coords, psi, n_shards)
            assert np.array_equal(expected, sset.covered_mask(block, psi))

    @settings(max_examples=30, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=6, min_points=1, max_points=4),
        dense_facilities(min_stops=16, max_stops=64),
        engine_psis(),
    )
    def test_covers_point_bit_identical(self, users, facility, psi):
        dense = StopSet.of_facility(facility)
        grid = ShardedStopGrid(facility.stop_coords, psi, 2)
        for u in users:
            for p in u.points:
                assert grid.covers_point(p, psi) == dense.covers_point(p, psi)

    @settings(max_examples=40, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=10, min_points=1, max_points=6),
        dense_facilities(min_stops=16, max_stops=96),
        engine_psis(),
    )
    def test_merged_stats_equal_unsharded_run(self, users, facility, psi):
        """Per-shard QueryStats merge to exactly the StopGrid totals."""
        block = _probe_block(users)
        unsharded = QueryStats()
        reference = StopGrid(facility.stop_coords, psi)
        ref_mask = reference.covered_mask(block, psi, unsharded)
        for n_shards in SHARD_COUNTS:
            merged = QueryStats()
            grid = ShardedStopGrid(facility.stop_coords, psi, n_shards)
            mask = grid.covered_mask(block, psi, merged)
            assert np.array_equal(ref_mask, mask)
            assert merged.points_scanned == unsharded.points_scanned
            assert merged.distance_evals == unsharded.distance_evals
            assert merged.cells_probed == unsharded.cells_probed

    @settings(max_examples=20, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=8, min_points=2, max_points=5),
        dense_facilities(min_stops=24, max_stops=96),
        engine_psis(),
    )
    def test_executor_fanout_identical_to_serial(self, users, facility, psi):
        block = _probe_block(users)
        grid = ShardedStopGrid(facility.stop_coords, psi, 7)
        serial_stats = QueryStats()
        serial = grid.covered_mask(block, psi, serial_stats)
        with ThreadPoolExecutor(max_workers=3) as pool:
            pooled_stats = QueryStats()
            pooled = grid.covered_mask(block, psi, pooled_stats, executor=pool)
        assert np.array_equal(serial, pooled)
        assert pooled_stats == serial_stats

    @settings(max_examples=25, deadline=None)
    @given(dense_facilities(min_stops=16, max_stops=96), engine_psis())
    def test_restriction_preserves_sharding_and_results(self, facility, psi):
        dense = StopSet.of_facility(facility)
        sharded = ShardedStopSet(facility.stop_coords, psi, 2)
        box = WORLD.quadrant(1).expanded(psi)
        d_sub = dense.restricted_to(box)
        s_sub = sharded.restricted_to(box)
        assert isinstance(s_sub, ShardedStopSet)
        assert np.array_equal(d_sub.coords, s_sub.coords)
        probe = np.array([[p, 1024.0 - p] for p in np.linspace(0.0, 1024.0, 41)])
        assert np.array_equal(
            d_sub.covered_mask(probe, psi), s_sub.covered_mask(probe, psi)
        )


class TestShardEdgeCases:
    def test_empty_shards_from_concentrated_stops(self):
        """All stops in one cell with 7 shards: six shards are empty and
        the answer is still exact."""
        stops = np.full((24, 2), 37.25)
        grid = ShardedStopGrid(stops, 1.0, 7)
        assert grid.n_shards == 7
        assert sum(1 for s in grid.shards if s.n_stops == 0) == 6
        probe = np.array([[37.25, 37.25], [38.25, 37.25], [38.3, 37.25], [0.0, 0.0]])
        expected = StopSet(stops).covered_mask(probe, 1.0)
        assert np.array_equal(expected, grid.covered_mask(probe, 1.0))
        assert expected.tolist() == [True, True, False, False]

    def test_probe_straddling_shard_boundary(self):
        """A probe point whose 3x3 neighbourhood spans two shards must
        union candidates from both."""
        # two stop clusters in adjacent cell columns; 2 shards cut between
        stops = np.array(
            [[x, 5.0] for x in (0.5, 1.5, 2.5, 3.5)]
            + [[x, 5.0] for x in (6.5, 7.5, 8.5, 9.5)]
        )
        grid = ShardedStopGrid(stops, 1.0, 2, cell_size=5.0)
        lows = {int(s.key_lo) for s in grid.shards if s.n_stops}
        assert len(lows) == 2  # genuinely two populated shards
        # point between the clusters: within psi of a stop in each shard
        probe = np.array([[4.3, 5.0], [5.7, 5.0], [5.0, 5.0]])
        expected = StopSet(stops).covered_mask(probe, 1.0)
        assert np.array_equal(expected, grid.covered_mask(probe, 1.0))
        assert expected.tolist() == [True, True, False]
        # each boundary point's serving stop lives in a different shard
        only_lo = ShardedStopGrid(stops[:4], 1.0, 1, cell_size=5.0)
        only_hi = ShardedStopGrid(stops[4:], 1.0, 1, cell_size=5.0)
        assert only_lo.covered_mask(probe, 1.0).tolist() == [True, False, False]
        assert only_hi.covered_mask(probe, 1.0).tolist() == [False, True, False]

    def test_stop_cells_never_straddle_shards(self):
        rng = np.random.default_rng(7)
        stops = np.round(rng.uniform(0, 200, size=(300, 2)))
        grid = ShardedStopGrid(stops, 3.0, 7)
        seen = set()
        last_hi = None
        for shard in grid.shards:
            if not shard.n_stops:
                continue
            keys = set(int(k) for k in shard.keys)
            assert not keys & seen  # no cell in two shards
            seen |= keys
            if last_hi is not None:
                assert int(shard.key_lo) > last_hi
            last_hi = int(shard.key_hi)
        assert sum(s.n_stops for s in grid.shards) == 300

    def test_oversized_radius_falls_back_dense(self):
        rng = np.random.default_rng(3)
        stops = rng.uniform(0, 100, size=(64, 2))
        probe = rng.uniform(-10, 110, size=(40, 2))
        grid = ShardedStopGrid(stops, 1.0, 2)
        big = 10.0 * grid.cell_size
        stats = QueryStats()
        mask = grid.covered_mask(probe, big, stats)
        assert np.array_equal(StopSet(stops).covered_mask(probe, big), mask)
        # dense fallback: all-pairs accounting
        assert stats.distance_evals == 40 * 64
        assert stats.cells_probed == 0

    def test_empty_inputs(self):
        empty_grid = ShardedStopGrid(np.zeros((0, 2)), 1.0, 3)
        assert empty_grid.is_empty
        probe = np.array([[1.0, 2.0]])
        assert empty_grid.covered_mask(probe, 1.0).tolist() == [False]
        grid = ShardedStopGrid(np.array([[1.0, 1.0]]), 1.0, 2)
        assert grid.covered_mask(np.zeros((0, 2)), 1.0).size == 0

    def test_invalid_inputs_raise(self):
        with pytest.raises(QueryError):
            ShardedStopGrid(np.zeros((3, 3)), 1.0)
        with pytest.raises(QueryError):
            ShardedStopGrid(np.zeros((3, 2)), -1.0)
        with pytest.raises(QueryError):
            ShardedStopGrid(np.zeros((3, 2)), 1.0, -2)
        with pytest.raises(QueryError):
            ShardedStopSet(np.zeros((3, 2)), 1.0, shards=-1)
        with pytest.raises(QueryError):
            # manual cell_size creating more rows than the key stride:
            # row keys would alias, breaking stats parity
            ShardedStopGrid(
                np.array([[0.0, 0.0], [0.0, 3.0e6]]), 1.0, 1, cell_size=1.01
            )


class TestShardStore:
    def test_identical_stop_sets_share_one_build(self):
        rng = np.random.default_rng(11)
        coords = rng.uniform(0, 500, size=(128, 2))
        store = ShardStore()
        g1 = store.sharded_grid(coords, 10.0, 4)
        g2 = store.sharded_grid(coords.copy(), 10.0, 4)
        assert g1 is g2
        assert store.grid_hits == 1 and store.grid_misses == 1

    def test_overlapping_stop_sets_share_shards(self):
        """A superset facility reuses the subset's built shard: the
        shared region sorts into a content-identical slice."""
        rng = np.random.default_rng(13)
        base = rng.uniform(0, 100, size=(80, 2))
        extras = rng.uniform(5_000, 6_000, size=(80, 2))
        superset = np.vstack([base, extras])
        store = ShardStore()
        g_base = store.sharded_grid(base, 5.0, 1)
        assert store.shard_hits == 0
        g_super = store.sharded_grid(superset, 5.0, 2)
        # the superset's lower slice is exactly the base set's shard
        assert store.shard_hits >= 1
        assert any(
            s is g_base.shards[0] for s in g_super.shards
        ), "expected the built shard object itself to be shared"
        # and answers stay exact for both
        probe = rng.uniform(0, 6_000, size=(200, 2))
        assert np.array_equal(
            StopSet(superset).covered_mask(probe, 5.0),
            g_super.covered_mask(probe, 5.0),
        )

    def test_different_content_never_aliases(self):
        rng = np.random.default_rng(17)
        a = rng.uniform(0, 100, size=(64, 2))
        b = a.copy()
        b[0, 0] += 0.5  # one stop nudged: different content
        store = ShardStore()
        ga = store.sharded_grid(a, 5.0, 2)
        gb = store.sharded_grid(b, 5.0, 2)
        assert ga is not gb
        probe = rng.uniform(0, 100, size=(100, 2))
        assert np.array_equal(
            StopSet(a).covered_mask(probe, 5.0), ga.covered_mask(probe, 5.0)
        )
        assert np.array_equal(
            StopSet(b).covered_mask(probe, 5.0), gb.covered_mask(probe, 5.0)
        )

    def test_store_retention_is_bounded(self):
        """Past the caps the oldest builds are evicted — a long-lived
        store's memory stays flat — and evicted content simply rebuilds
        with the same (exact) answers."""
        rng = np.random.default_rng(29)
        store = ShardStore(max_grids=3, max_shards=6)
        sets = [rng.uniform(0, 300, size=(48, 2)) for _ in range(8)]
        for coords in sets:
            store.sharded_grid(coords, 5.0, 2)
        assert len(store._grids) <= 3
        assert len(store._shards) <= 6
        probe = rng.uniform(0, 300, size=(60, 2))
        evicted = store.sharded_grid(sets[0], 5.0, 2)  # rebuild, not a hit
        assert np.array_equal(
            StopSet(sets[0]).covered_mask(probe, 5.0),
            evicted.covered_mask(probe, 5.0),
        )

    def test_sharded_stop_set_builds_through_store(self):
        rng = np.random.default_rng(19)
        coords = rng.uniform(0, 500, size=(96, 2))
        store = ShardStore()
        s1 = ShardedStopSet(coords, 10.0, 3, store=store)
        s2 = ShardedStopSet(coords.copy(), 10.0, 3, store=store)
        probe = rng.uniform(0, 500, size=(50, 2))
        m1 = s1.covered_mask(probe, 10.0)
        m2 = s2.covered_mask(probe, 10.0)
        assert np.array_equal(m1, m2)
        assert store.grid_hits >= 1  # the second set reused the build


class TestShardStoreEviction:
    """Retention is oldest-first and eviction is always recoverable:
    the store is a content-addressed cache, so an evicted build simply
    reconstructs (exactly) when requested again."""

    def test_eviction_is_oldest_first(self):
        rng = np.random.default_rng(31)
        store = ShardStore(max_grids=2, max_shards=100)
        sets = [rng.uniform(0, 300, size=(32, 2)) for _ in range(3)]
        grids = [store.sharded_grid(c, 5.0, 2) for c in sets]
        # cap 2: inserting the third evicted exactly the first build
        assert len(store._grids) == 2
        retained = list(store._grids.values())
        assert grids[1] in retained and grids[2] in retained
        assert grids[0] not in retained
        # the survivors still hit; the evicted one misses
        assert store.sharded_grid(sets[1], 5.0, 2) is grids[1]
        assert store.sharded_grid(sets[2], 5.0, 2) is grids[2]

    def test_reinsertion_after_eviction(self):
        rng = np.random.default_rng(32)
        store = ShardStore(max_grids=1, max_shards=4)
        a = rng.uniform(0, 300, size=(40, 2))
        b = rng.uniform(0, 300, size=(40, 2))
        ga = store.sharded_grid(a, 5.0, 2)
        store.sharded_grid(b, 5.0, 2)  # evicts a
        misses_before = store.grid_misses
        ga2 = store.sharded_grid(a, 5.0, 2)  # rebuild, not a hit
        assert store.grid_misses == misses_before + 1
        assert ga2 is not ga
        probe = rng.uniform(0, 300, size=(64, 2))
        np.testing.assert_array_equal(
            ga.covered_mask(probe, 5.0), ga2.covered_mask(probe, 5.0)
        )
        # and the re-inserted build is served from the store again
        assert store.sharded_grid(a, 5.0, 2) is ga2

    def test_eviction_never_breaks_live_grids(self):
        """A grid evicted from the store keeps answering: the store
        holds builds, it does not own them."""
        rng = np.random.default_rng(33)
        store = ShardStore(max_grids=1, max_shards=2)
        a = rng.uniform(0, 300, size=(48, 2))
        ga = store.sharded_grid(a, 5.0, 2)
        for _ in range(4):  # churn the store well past both caps
            store.sharded_grid(rng.uniform(0, 300, size=(48, 2)), 5.0, 2)
        probe = rng.uniform(0, 300, size=(64, 2))
        np.testing.assert_array_equal(
            ga.covered_mask(probe, 5.0),
            StopSet(a).covered_mask(probe, 5.0),
        )

    def test_sharing_across_views_of_one_buffer(self):
        """Facilities whose stop arrays are views of the same buffer —
        equal slices, or a strided view vs. its materialised copy —
        share one build: content addressing sees values, not layout."""
        rng = np.random.default_rng(34)
        buffer = rng.uniform(0, 300, size=(200, 2))
        store = ShardStore()
        g1 = store.sharded_grid(buffer[:120], 5.0, 2)
        g2 = store.sharded_grid(buffer[:120], 5.0, 2)  # same view again
        assert g2 is g1
        assert store.grid_hits == 1
        # a non-contiguous view and its contiguous copy are one build too
        strided = buffer[::2]
        assert not strided.flags["C_CONTIGUOUS"]
        g3 = store.sharded_grid(strided, 5.0, 2)
        g4 = store.sharded_grid(np.ascontiguousarray(strided), 5.0, 2)
        assert g4 is g3
        probe = rng.uniform(0, 300, size=(64, 2))
        np.testing.assert_array_equal(
            g3.covered_mask(probe, 5.0),
            StopSet(strided).covered_mask(probe, 5.0),
        )

    def test_overlapping_views_share_shard_slices(self):
        """Two facilities slicing one buffer share interned shards where
        their sorted layouts coincide, and evicted slices re-intern."""
        rng = np.random.default_rng(35)
        base = np.sort(rng.uniform(0, 400, size=(160, 2)), axis=0)
        store = ShardStore(max_grids=8, max_shards=2)
        store.sharded_grid(base[:100], 5.0, 1)
        hits_before = store.shard_hits
        store.sharded_grid(base[:100], 5.0, 2)
        # the 2-shard cut of an identical stop set reuses at least the
        # grid build; slice interning shows up as shard hits when cuts
        # coincide with the 1-shard slice
        assert store.grid_misses >= 2
        assert store.shard_hits >= hits_before
        # churn past max_shards: interning stays bounded and recoverable
        for i in range(4):
            store.sharded_grid(base[: 40 + i * 20], 5.0, 2)
        assert len(store._shards) <= 2


@pytest.mark.engine_smoke
def test_sharded_smoke(taxi_users, facilities):
    """Fast sharded-vs-oracle smoke check (runs in the default suite)."""
    block = np.concatenate([u.coords for u in taxi_users[:100]])
    for f in facilities[:3]:
        dense = StopSet.of_facility(f)
        expected = dense.covered_mask(block, 400.0)
        for n_shards in SHARD_COUNTS:
            grid = ShardedStopGrid(f.stop_coords, 400.0, n_shards)
            assert np.array_equal(expected, grid.covered_mask(block, 400.0))
