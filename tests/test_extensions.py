"""Tests for the extension modules: range search and the block-I/O model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import (
    BBox,
    Point,
    QueryError,
    ServiceModel,
    ServiceSpec,
    TQTree,
    TQTreeConfig,
    build_tq_basic,
    build_tq_zorder,
)
from repro.queries.iomodel import BlockCosts, estimate_query_blocks
from repro.queries.range_search import (
    trajectories_in_range,
    trajectories_served_by_stop,
)

from .strategies import WORLD, trajectory_sets


class TestRangeSearch:
    def _tree(self, users):
        return TQTree.build(users, TQTreeConfig(beta=4), space=WORLD)

    def test_any_mode_matches_brute_force_fixture(self, taxi_users):
        tree = build_tq_zorder(taxi_users, beta=16)
        box = BBox(2000, 2000, 6000, 6000)
        got = trajectories_in_range(tree, box, mode="any")
        expected = sorted(
            u.traj_id
            for u in taxi_users
            if any(box.contains_point(p) for p in u.points)
        )
        assert got == expected

    def test_all_mode_matches_brute_force_fixture(self, taxi_users):
        tree = build_tq_zorder(taxi_users, beta=16)
        box = BBox(1000, 1000, 8_000, 8_000)
        got = trajectories_in_range(tree, box, mode="all")
        expected = sorted(
            u.traj_id
            for u in taxi_users
            if all(box.contains_point(p) for p in u.points)
        )
        assert got == expected

    def test_invalid_mode(self, taxi_users):
        tree = build_tq_zorder(taxi_users, beta=16)
        with pytest.raises(QueryError):
            trajectories_in_range(tree, WORLD, mode="some")

    def test_empty_range(self, taxi_users):
        tree = build_tq_zorder(taxi_users, beta=16)
        far = BBox(10**6, 10**6, 10**6 + 1, 10**6 + 1)
        assert trajectories_in_range(tree, far) == []

    @settings(max_examples=25, deadline=None)
    @given(trajectory_sets(min_size=1, max_size=20, min_points=2, max_points=4))
    def test_any_mode_property_endpoint_index(self, users):
        """On an ENDPOINT index, range semantics cover the indexed
        endpoints only (interior points are not placement-constrained)."""
        tree = self._tree(users)
        box = BBox(200, 200, 700, 700)
        got = trajectories_in_range(tree, box, mode="any")
        expected = sorted(
            u.traj_id
            for u in users
            if box.contains_point(u.start) or box.contains_point(u.end)
        )
        assert got == expected

    @settings(max_examples=25, deadline=None)
    @given(trajectory_sets(min_size=1, max_size=15, min_points=2, max_points=5))
    def test_any_mode_property_full_index(self, users):
        """A FULL index answers whole-polyline range semantics exactly."""
        from repro import IndexVariant

        tree = TQTree.build(
            users, TQTreeConfig(beta=4, variant=IndexVariant.FULL), space=WORLD
        )
        box = BBox(200, 200, 700, 700)
        got = trajectories_in_range(tree, box, mode="any")
        expected = sorted(
            u.traj_id for u in users if any(box.contains_point(p) for p in u.points)
        )
        assert got == expected

    def test_stop_query_both_endpoints(self, taxi_users):
        tree = build_tq_zorder(taxi_users, beta=16)
        stop = taxi_users[0].start
        psi = 800.0
        got = trajectories_served_by_stop(tree, stop, psi, require_both_endpoints=True)
        expected = sorted(
            u.traj_id
            for u in taxi_users
            if u.start.dist_to(stop) <= psi and u.end.dist_to(stop) <= psi
        )
        assert got == expected

    def test_stop_query_partial(self, taxi_users):
        tree = build_tq_zorder(taxi_users, beta=16)
        stop = taxi_users[0].start
        psi = 500.0
        got = trajectories_served_by_stop(
            tree, stop, psi, require_both_endpoints=False
        )
        expected = sorted(
            u.traj_id
            for u in taxi_users
            if any(p.dist_to(stop) <= psi for p in (u.start, u.end))
        )
        assert got == expected

    def test_stop_query_negative_psi(self, taxi_users):
        tree = build_tq_zorder(taxi_users, beta=16)
        with pytest.raises(QueryError):
            trajectories_served_by_stop(tree, Point(0, 0), -1.0)


class TestBlockModel:
    def test_costs_positive_and_structured(self, taxi_users, facilities, endpoint_spec):
        tree = build_tq_zorder(taxi_users, beta=16)
        costs = estimate_query_blocks(tree, facilities[0], endpoint_spec)
        assert costs.node_blocks >= 1
        assert costs.total == (
            costs.node_blocks + costs.list_blocks + costs.directory_blocks
        )

    def test_tqz_reads_fewer_list_blocks_than_tqb(self, taxi_users, facilities):
        """The machine-independent claim: z-bucketing reads only the
        buckets holding candidates, a flat list reads everything.
        A selective psi keeps the serving corridor narrow."""
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=120.0)
        tz = build_tq_zorder(taxi_users, beta=16)
        tb = build_tq_basic(taxi_users, beta=16)
        z_blocks = sum(
            estimate_query_blocks(tz, f, spec).list_blocks for f in facilities
        )
        b_blocks = sum(
            estimate_query_blocks(tb, f, spec).list_blocks for f in facilities
        )
        assert z_blocks < b_blocks

    def test_tqb_has_no_directory_blocks(self, taxi_users, facilities, endpoint_spec):
        tb = build_tq_basic(taxi_users, beta=16)
        costs = estimate_query_blocks(tb, facilities[0], endpoint_spec)
        assert costs.directory_blocks == 0

    def test_unservable_facility_costs_little(self, taxi_users, endpoint_spec):
        from repro import FacilityRoute

        tree = build_tq_zorder(taxi_users, beta=16)
        far = FacilityRoute(0, [(10**6, 10**6)])
        costs = estimate_query_blocks(tree, far, endpoint_spec)
        assert costs.list_blocks == 0

    def test_validates_spec(self, checkin_users):
        tree = build_tq_zorder(checkin_users, beta=16)
        from repro import FacilityRoute

        with pytest.raises(QueryError):
            estimate_query_blocks(
                tree,
                FacilityRoute(0, [(0, 0)]),
                ServiceSpec(ServiceModel.COUNT, psi=10.0),
            )

    def test_blockcosts_default(self):
        assert BlockCosts().total == 0
