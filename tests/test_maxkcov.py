"""Tests for MaxkCovRST: combined semantics, greedy behaviour, agreement
between G-BL / G-TQ(B) / G-TQ(Z)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import (
    BaselineIndex,
    FacilityRoute,
    QueryError,
    ServiceModel,
    ServiceSpec,
    TQTree,
    TQTreeConfig,
    Trajectory,
    brute_force_combined_service,
    build_tq_basic,
    build_tq_zorder,
    greedy_max_k_coverage,
    maxkcov_baseline,
    maxkcov_tq,
)
from repro.queries import baseline_match_fn, tq_match_fn

from .strategies import WORLD, facility_sets, psis, trajectory_sets


class TestCombinedSemantics:
    def test_lemma1_cross_facility_serving(self):
        """The paper's non-submodularity construction: one facility near
        the source, another near the destination — together they serve
        the user, separately they do not."""
        user = Trajectory(0, [(0, 0), (1000, 0)])
        near_start = FacilityRoute(0, [(0, 5)])
        near_end = FacilityRoute(1, [(1000, 5)])
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=10.0)
        assert brute_force_combined_service([user], [near_start], spec) == 0.0
        assert brute_force_combined_service([user], [near_end], spec) == 0.0
        assert (
            brute_force_combined_service([user], [near_start, near_end], spec) == 1.0
        )

    def test_non_submodularity_witness(self):
        """Marginal gain of x on superset B exceeds its gain on A ⊂ B —
        impossible for submodular functions (Lemma 1)."""
        user = Trajectory(0, [(0, 0), (1000, 0)])
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=10.0)
        a = FacilityRoute(0, [(500, 500)])  # serves nothing of the user
        b = FacilityRoute(1, [(0, 5)])  # serves the source
        x = FacilityRoute(2, [(1000, 5)])  # serves the destination
        users = [user]

        def so(facs):
            return brute_force_combined_service(users, facs, spec)

        gain_on_a = so([a, x]) - so([a])
        gain_on_ab = so([a, b, x]) - so([a, b])
        assert gain_on_ab > gain_on_a  # diminishing returns violated

    def test_greedy_finds_cross_facility_pair(self):
        users = [Trajectory(i, [(0, i * 30), (1000, i * 30)]) for i in range(5)]
        near_start = FacilityRoute(0, [(0, 60)])
        near_end = FacilityRoute(1, [(1000, 60)])
        decoy = FacilityRoute(2, [(500, 500)])
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=200.0)
        tree = TQTree.build(users, TQTreeConfig(beta=4), space=WORLD)
        result = greedy_max_k_coverage(
            users, [near_start, near_end, decoy], 2, spec, tq_match_fn(tree, spec)
        )
        assert set(result.facility_ids()) == {0, 1}
        assert result.users_fully_served == 5


class TestGreedy:
    def test_invalid_k(self, taxi_users, facilities, endpoint_spec):
        tree = build_tq_zorder(taxi_users, beta=16)
        with pytest.raises(QueryError):
            maxkcov_tq(tree, facilities, 0, endpoint_spec)

    def test_invalid_prune_factor(self, taxi_users, facilities, endpoint_spec):
        tree = build_tq_zorder(taxi_users, beta=16)
        with pytest.raises(QueryError):
            maxkcov_tq(tree, facilities, 2, endpoint_spec, prune_factor=0)

    def test_combined_value_is_exact(self, taxi_users, facilities, endpoint_spec):
        """The reported combined service equals the oracle on the chosen set."""
        tree = build_tq_zorder(taxi_users, beta=16)
        result = maxkcov_tq(tree, facilities, 3, endpoint_spec)
        assert result.combined_service == pytest.approx(
            brute_force_combined_service(
                taxi_users, list(result.selection), endpoint_spec
            )
        )

    def test_all_strategies_agree(self, taxi_users, facilities, endpoint_spec):
        """G-BL, G-TQ(B), G-TQ(Z) consume identical match sets, so the
        greedy outcome must coincide (prune wide enough to not bite)."""
        tz = build_tq_zorder(taxi_users, beta=16)
        tb = build_tq_basic(taxi_users, beta=16)
        bl = BaselineIndex.build(taxi_users)
        k = 3
        r_bl = maxkcov_baseline(bl, taxi_users, facilities, k, endpoint_spec)
        r_tz = maxkcov_tq(tz, facilities, k, endpoint_spec, prune_factor=len(facilities))
        r_tb = maxkcov_tq(tb, facilities, k, endpoint_spec, prune_factor=len(facilities))
        assert r_bl.combined_service == pytest.approx(r_tz.combined_service)
        assert r_bl.combined_service == pytest.approx(r_tb.combined_service)
        assert r_bl.facility_ids() == r_tz.facility_ids() == r_tb.facility_ids()

    def test_greedy_at_least_best_single(self, taxi_users, facilities, endpoint_spec):
        from repro import brute_force_service

        tree = build_tq_zorder(taxi_users, beta=16)
        result = maxkcov_tq(tree, facilities, 3, endpoint_spec)
        best_single = max(
            brute_force_service(taxi_users, f, endpoint_spec) for f in facilities
        )
        assert result.combined_service >= best_single - 1e-9

    def test_monotone_in_k(self, taxi_users, facilities, endpoint_spec):
        tree = build_tq_zorder(taxi_users, beta=16)
        values = [
            maxkcov_tq(tree, facilities, k, endpoint_spec).combined_service
            for k in (1, 2, 4, 8)
        ]
        assert values == sorted(values)

    def test_step_gains_recorded(self, taxi_users, facilities, endpoint_spec):
        tree = build_tq_zorder(taxi_users, beta=16)
        result = maxkcov_tq(tree, facilities, 3, endpoint_spec)
        assert len(result.step_gains) == len(result.selection)
        assert sum(result.step_gains) == pytest.approx(result.combined_service)

    def test_stops_early_when_nothing_servable(self, endpoint_spec):
        users = [Trajectory(0, [(0, 0), (10, 0)])]
        far = [
            FacilityRoute(i, [(900 + i, 900)]) for i in range(4)
        ]  # serve nothing
        tree = TQTree.build(users, TQTreeConfig(beta=4), space=WORLD)
        result = greedy_max_k_coverage(
            users, far, 3, endpoint_spec, tq_match_fn(tree, endpoint_spec)
        )
        assert result.selection == ()
        assert result.combined_service == 0.0

    def test_count_model_coverage(self, checkin_users, facilities, count_spec):
        from repro import build_segmented

        tree = build_segmented(checkin_users, beta=16)
        result = maxkcov_tq(tree, facilities, 3, count_spec)
        assert result.combined_service == pytest.approx(
            brute_force_combined_service(
                checkin_users, list(result.selection), count_spec
            )
        )

    def test_small_prune_factor_no_worse_than_single(self, taxi_users, facilities, endpoint_spec):
        tree = build_tq_zorder(taxi_users, beta=16)
        tight = maxkcov_tq(tree, facilities, 2, endpoint_spec, prune_factor=1)
        wide = maxkcov_tq(tree, facilities, 2, endpoint_spec, prune_factor=6)
        assert wide.combined_service >= tight.combined_service - 1e-9


class TestPropertyGreedy:
    @settings(max_examples=20, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=12, min_points=2, max_points=2),
        facility_sets(min_size=1, max_size=5),
        psis(),
    )
    def test_greedy_value_equals_oracle_on_selection(self, users, facs, psi):
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=psi)
        tree = TQTree.build(users, TQTreeConfig(beta=3), space=WORLD)
        result = greedy_max_k_coverage(users, facs, 2, spec, tq_match_fn(tree, spec))
        assert result.combined_service == pytest.approx(
            brute_force_combined_service(users, list(result.selection), spec)
        )

    @settings(max_examples=20, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=10, min_points=2, max_points=2),
        facility_sets(min_size=2, max_size=5),
        psis(),
    )
    def test_baseline_and_tq_match_fns_identical(self, users, facs, psi):
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=psi)
        tree = TQTree.build(users, TQTreeConfig(beta=3), space=WORLD)
        bl = BaselineIndex.build(users)
        fn_tq = tq_match_fn(tree, spec)
        fn_bl = baseline_match_fn(bl, spec)
        for f in facs:
            assert dict(fn_tq(f)) == dict(fn_bl(f))
