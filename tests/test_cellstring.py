"""Differential tests: the cellstring tier must be *bit-identical* to
the dense ``core.service`` oracle, for every input.

Rasterization is conservative by construction — cover-inflation plus
interior-deflation means float misclassification only moves cells from
the membership-accept path to the exact-kernel path — so every
comparison here is ``==`` / ``array_equal``, never ``approx``.  The
suite drives Hypothesis-generated adversarial inputs (ties at exactly
``psi``, zero radii, world-spanning radii) through
:class:`CellstringIndex` and :class:`CellstringStopSet`, plus the
structural edge cases: empty stop sets, coincident stops, huge
coordinates with subnormal radii, and radius-mismatch fallback.  The
:class:`ShardStore` cellstring cache is held to the same standard as
its shard cache: content addressing with bitwise re-verification,
bounded oldest-first retention, and exact rebuilds after eviction.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings

from repro import (
    CellstringIndex,
    CellstringStopSet,
    QueryStats,
    ShardStore,
    StopSet,
    build_cellstring_index,
)
from repro.core.errors import QueryError
from repro.core.geometry import Point

from .strategies import WORLD, dense_facilities, engine_psis, trajectory_sets


def _probe_block(users) -> np.ndarray:
    return np.concatenate([u.coords for u in users])


class TestCellstringMaskOracle:
    """CellstringIndex / CellstringStopSet masks vs the dense broadcast."""

    @settings(max_examples=50, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=12, min_points=1, max_points=6),
        dense_facilities(min_stops=16, max_stops=96),
        engine_psis(),
    )
    def test_masks_bit_identical(self, users, facility, psi):
        dense = StopSet.of_facility(facility)
        block = _probe_block(users)
        expected = dense.covered_mask(block, psi)
        idx = build_cellstring_index(facility.stop_coords, psi)
        assert np.array_equal(expected, idx.covered_mask(block, psi))
        sset = CellstringStopSet(facility.stop_coords, psi)
        assert np.array_equal(expected, sset.covered_mask(block, psi))

    @settings(max_examples=30, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=6, min_points=1, max_points=4),
        dense_facilities(min_stops=16, max_stops=64),
        engine_psis(),
    )
    def test_covers_point_bit_identical(self, users, facility, psi):
        dense = StopSet.of_facility(facility)
        sset = CellstringStopSet(facility.stop_coords, psi)
        for u in users:
            for p in u.points:
                assert sset.covers_point(p, psi) == dense.covers_point(p, psi)

    @settings(max_examples=30, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=10, min_points=1, max_points=6),
        dense_facilities(min_stops=16, max_stops=96),
        engine_psis(),
    )
    def test_stats_deterministic_and_bounded(self, users, facility, psi):
        """Stop-set and raw-index probes account identical work, and the
        kernel-pair count never exceeds the dense all-pairs cost."""
        block = _probe_block(users)
        idx = build_cellstring_index(facility.stop_coords, psi)
        s_idx = QueryStats()
        m_idx = idx.covered_mask(block, psi, s_idx)
        sset = CellstringStopSet(facility.stop_coords, psi)
        s_set = QueryStats()
        m_set = sset.covered_mask(block, psi, s_set)
        assert np.array_equal(m_idx, m_set)
        assert s_idx == s_set
        assert s_idx.points_scanned <= block.shape[0]
        assert s_idx.distance_evals <= block.shape[0] * facility.n_stops

    @settings(max_examples=20, deadline=None)
    @given(
        trajectory_sets(min_size=2, max_size=8, min_points=2, max_points=5),
        dense_facilities(min_stops=24, max_stops=96),
        engine_psis(),
    )
    def test_executor_fanout_identical_to_serial(self, users, facility, psi):
        """Chunked thread fan-out concatenates to the serial mask and
        merges to the serial stats exactly (the counters are per-point
        sums, so chunk boundaries are invisible)."""
        block = _probe_block(users)
        serial = CellstringStopSet(facility.stop_coords, psi)
        serial_stats = QueryStats()
        expected = serial.covered_mask(block, psi, serial_stats)
        idx = serial._index_for(psi)
        with ThreadPoolExecutor(max_workers=3) as pool:
            pooled_stats = QueryStats()
            pooled = CellstringStopSet._fanout_mask(
                idx, np.asarray(block, dtype=np.float64), psi, pooled_stats, pool
            )
        assert np.array_equal(expected, pooled)
        assert pooled_stats == serial_stats

    @settings(max_examples=25, deadline=None)
    @given(dense_facilities(min_stops=16, max_stops=96), engine_psis())
    def test_restriction_preserves_tier_and_results(self, facility, psi):
        dense = StopSet.of_facility(facility)
        sset = CellstringStopSet(facility.stop_coords, psi)
        box = WORLD.quadrant(1).expanded(psi)
        d_sub = dense.restricted_to(box)
        s_sub = sset.restricted_to(box)
        assert isinstance(s_sub, CellstringStopSet)
        assert np.array_equal(d_sub.coords, s_sub.coords)
        probe = np.array([[p, 1024.0 - p] for p in np.linspace(0.0, 1024.0, 41)])
        assert np.array_equal(
            d_sub.covered_mask(probe, psi), s_sub.covered_mask(probe, psi)
        )

    @settings(max_examples=20, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=6, min_points=1, max_points=4),
        dense_facilities(min_stops=16, max_stops=64),
        engine_psis(),
        engine_psis(),
    )
    def test_radius_mismatch_falls_back_exact(self, users, facility, built, asked):
        """An index built for one radius answers any other radius through
        the dense kernel — never wrong, just not fast."""
        block = _probe_block(users)
        idx = build_cellstring_index(facility.stop_coords, built)
        expected = StopSet.of_facility(facility).covered_mask(block, asked)
        assert np.array_equal(expected, idx.covered_mask(block, asked))


class TestCellstringEdgeCases:
    def test_empty_stop_set(self):
        idx = build_cellstring_index(np.zeros((0, 2)), 5.0)
        assert idx.is_empty
        assert idx.n_cells == 0
        probe = np.array([[1.0, 2.0], [0.0, 0.0]])
        assert idx.covered_mask(probe, 5.0).tolist() == [False, False]

    def test_empty_probe_block(self):
        idx = build_cellstring_index(np.array([[1.0, 1.0]]), 2.0)
        assert idx.covered_mask(np.zeros((0, 2)), 2.0).size == 0

    def test_single_stop_psi_zero_is_exact_coincidence(self):
        """psi == 0 degenerates to exact equality: no interior cells,
        the kernel decides every hit."""
        idx = build_cellstring_index(np.array([[3.25, 7.5]]), 0.0)
        assert idx.interior_keys.size == 0
        probe = np.array([[3.25, 7.5], [3.25, 7.5 + 1e-12], [0.0, 0.0]])
        mask = idx.covered_mask(probe, 0.0)
        assert mask.tolist() == [True, False, False]

    def test_all_coincident_stops(self):
        stops = np.full((40, 2), 37.25)
        idx = build_cellstring_index(stops, 1.0)
        probe = np.array([[37.25, 37.25], [38.25, 37.25], [38.3, 37.25]])
        expected = StopSet(stops).covered_mask(probe, 1.0)
        assert np.array_equal(expected, idx.covered_mask(probe, 1.0))
        assert expected.tolist() == [True, True, False]

    def test_huge_coordinates_subnormal_radius(self):
        """Coordinates at 1e10 with psi down at the float floor: the
        geometry derivation must stay finite and the mask exact."""
        stops = np.full((8, 2), 1.0e10)
        for psi in (1e-300, 5e-324, 0.0):
            idx = build_cellstring_index(stops, psi)
            probe = np.array([[1.0e10, 1.0e10], [1.0e10 + 1.0, 1.0e10]])
            expected = StopSet(stops).covered_mask(probe, psi)
            assert np.array_equal(expected, idx.covered_mask(probe, psi))

    def test_probes_far_outside_space_reject(self):
        """Points flooring outside the lattice are sound rejections,
        including coordinates extreme enough to overflow naive casts."""
        stops = np.random.default_rng(5).uniform(0, 100, size=(32, 2))
        idx = build_cellstring_index(stops, 3.0)
        probe = np.array(
            [[1e18, 1e18], [-1e18, 50.0], [50.0, np.inf], [np.nan, 50.0]]
        )
        assert idx.covered_mask(probe, 3.0).tolist() == [False] * 4

    def test_world_spanning_radius_accepts_everything_near(self):
        stops = np.random.default_rng(6).uniform(0, 100, size=(16, 2))
        probe = np.random.default_rng(7).uniform(-200, 300, size=(64, 2))
        psi = 1000.0
        idx = build_cellstring_index(stops, psi)
        expected = StopSet(stops).covered_mask(probe, psi)
        assert np.array_equal(expected, idx.covered_mask(probe, psi))
        assert expected.all()

    def test_min_stops_threshold_keeps_small_sets_dense(self):
        coords = np.random.default_rng(8).uniform(0, 50, size=(10, 2))
        sset = CellstringStopSet(coords, 5.0, min_stops=48)
        assert sset._index_for(5.0) is None
        probe = np.random.default_rng(9).uniform(0, 50, size=(30, 2))
        assert np.array_equal(
            StopSet(coords).covered_mask(probe, 5.0),
            sset.covered_mask(probe, 5.0),
        )

    def test_psi_memo_is_bounded(self):
        coords = np.random.default_rng(10).uniform(0, 50, size=(32, 2))
        sset = CellstringStopSet(coords, 5.0)
        for psi in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0):
            sset._index_for(psi)
        assert len(sset._memo) <= 4
        # evicted radii rebuild with the same answers
        probe = np.random.default_rng(11).uniform(0, 50, size=(40, 2))
        assert np.array_equal(
            StopSet(coords).covered_mask(probe, 1.0),
            sset.covered_mask(probe, 1.0),
        )

    def test_invalid_inputs_raise(self):
        with pytest.raises(QueryError):
            build_cellstring_index(np.zeros((3, 3)), 1.0)
        with pytest.raises(QueryError):
            build_cellstring_index(np.zeros((3, 2)), -1.0)
        with pytest.raises(QueryError):
            CellstringStopSet(np.zeros((3, 2)), -0.5)

    def test_coarse_keys_are_prefixes_of_fine(self):
        """Every interior/boundary key truncates into the coarse array —
        the two levels describe one lattice by construction."""
        stops = np.random.default_rng(12).uniform(0, 200, size=(64, 2))
        idx = build_cellstring_index(stops, 4.0)
        fine = np.concatenate([idx.interior_keys, idx.boundary_keys])
        shifted = np.unique(fine >> np.int64(idx.coarse_shift))
        assert np.array_equal(shifted, idx.coarse_keys)
        # CSR invariant: indptr is monotone and spans the stops array
        assert idx.boundary_indptr[0] == 0
        assert idx.boundary_indptr[-1] == idx.boundary_stops.size
        assert (np.diff(idx.boundary_indptr) >= 1).all()


class TestCellstringStore:
    def test_identical_stop_sets_share_one_build(self):
        rng = np.random.default_rng(11)
        coords = rng.uniform(0, 500, size=(128, 2))
        store = ShardStore()
        i1 = store.cellstring_index(coords, 10.0)
        i2 = store.cellstring_index(coords.copy(), 10.0)
        assert i1 is i2
        assert store.cellstring_hits == 1 and store.cellstring_misses == 1

    def test_different_content_never_aliases(self):
        rng = np.random.default_rng(17)
        a = rng.uniform(0, 100, size=(64, 2))
        b = a.copy()
        b[0, 0] += 0.5  # one stop nudged: different content
        store = ShardStore()
        ia = store.cellstring_index(a, 5.0)
        ib = store.cellstring_index(b, 5.0)
        assert ia is not ib
        probe = rng.uniform(0, 100, size=(100, 2))
        assert np.array_equal(
            StopSet(a).covered_mask(probe, 5.0), ia.covered_mask(probe, 5.0)
        )
        assert np.array_equal(
            StopSet(b).covered_mask(probe, 5.0), ib.covered_mask(probe, 5.0)
        )

    def test_distinct_radii_are_distinct_builds(self):
        rng = np.random.default_rng(18)
        coords = rng.uniform(0, 100, size=(48, 2))
        store = ShardStore()
        i1 = store.cellstring_index(coords, 5.0)
        i2 = store.cellstring_index(coords, 6.0)
        assert i1 is not i2
        assert store.cellstring_misses == 2

    def test_store_retention_is_bounded(self):
        rng = np.random.default_rng(29)
        store = ShardStore(max_cellstrings=3)
        sets = [rng.uniform(0, 300, size=(48, 2)) for _ in range(8)]
        for coords in sets:
            store.cellstring_index(coords, 5.0)
        assert len(store._cellstrings) <= 3
        probe = rng.uniform(0, 300, size=(60, 2))
        misses_before = store.cellstring_misses
        evicted = store.cellstring_index(sets[0], 5.0)  # rebuild, not a hit
        assert store.cellstring_misses == misses_before + 1
        assert np.array_equal(
            StopSet(sets[0]).covered_mask(probe, 5.0),
            evicted.covered_mask(probe, 5.0),
        )

    def test_stop_set_builds_through_store(self):
        rng = np.random.default_rng(19)
        coords = rng.uniform(0, 500, size=(96, 2))
        store = ShardStore()
        s1 = CellstringStopSet(coords, 10.0, store=store)
        s2 = CellstringStopSet(coords.copy(), 10.0, store=store)
        probe = rng.uniform(0, 500, size=(50, 2))
        m1 = s1.covered_mask(probe, 10.0)
        m2 = s2.covered_mask(probe, 10.0)
        assert np.array_equal(m1, m2)
        assert store.cellstring_hits >= 1  # the second set reused the build

    def test_clear_and_len_cover_cellstrings(self):
        rng = np.random.default_rng(20)
        store = ShardStore()
        store.cellstring_index(rng.uniform(0, 100, size=(32, 2)), 5.0)
        assert len(store) >= 1
        store.clear()
        assert len(store._cellstrings) == 0


@pytest.mark.engine_smoke
def test_cellstring_smoke(taxi_users, facilities):
    """Fast cellstring-vs-oracle smoke check (runs in the default suite)."""
    block = np.concatenate([u.coords for u in taxi_users[:100]])
    for f in facilities[:3]:
        dense = StopSet.of_facility(f)
        expected = dense.covered_mask(block, 400.0)
        idx = build_cellstring_index(f.stop_coords, 400.0)
        assert np.array_equal(expected, idx.covered_mask(block, 400.0))
        assert CellstringStopSet(f.stop_coords, 400.0).covers_point(
            Point(float(block[0, 0]), float(block[0, 1])), 400.0
        ) == dense.covers_point(Point(float(block[0, 0]), float(block[0, 1])), 400.0)
