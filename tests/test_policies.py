"""Differential suite for the pluggable execution policies.

The contract: ``RuntimeConfig.policy`` — ``serial`` / ``threads`` /
``processes`` — never changes an answer.  Masks must be bit-identical to
the dense oracle for every policy at every shard count, per-shard
``QueryStats`` must merge to exactly the unsharded totals under every
policy, and the full query stack (evaluate / kMaxRRST / MaxkCovRST /
batch engine) must return ``==`` results when routed through any policy.

The processes policy additionally ships shard arrays through
``multiprocessing.shared_memory``; its lifecycle (lazy pool, export
caching, unlink-on-close, degrade-to-serial after close) is covered
here too.

Set ``REPRO_MP_START_METHOD=spawn`` (CI does, mirroring the
macOS/Windows default) to run every process-policy case under the
``spawn`` start method instead of the platform default.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro import (
    BatchQueryEngine,
    CoverageCache,
    ExecutionPolicy,
    ProximityBackend,
    QueryRuntime,
    QueryStats,
    RuntimeConfig,
    ServiceModel,
    ServiceSpec,
    StopSet,
    TQTree,
    TQTreeConfig,
    evaluate_service,
    maxkcov_tq,
    top_k_facilities,
)
from repro.core.errors import QueryError
from repro.queries.components import FacilityComponent
from repro.queries.evaluate import evaluate_node_trajectories
from repro.runtime import coerce_runtime
from repro.runtime.policies import (
    AUTO_POLICY_MIN_POINTS,
    AutoPolicyExecutor,
    ProcessPolicyExecutor,
    SerialPolicyExecutor,
    ThreadPolicyExecutor,
    make_policy_executor,
)

#: The ISSUE-3 acceptance matrix.
POLICIES = ("serial", "threads", "processes")
SHARD_COUNTS = (1, 2, 7)

#: CI exports this to re-run the whole suite under the macOS/Windows
#: default start method; unset, the platform default applies.
START_METHOD = os.environ.get("REPRO_MP_START_METHOD") or None


def _config(policy: str, shards: int, max_workers: int = 2) -> RuntimeConfig:
    return RuntimeConfig(
        backend=ProximityBackend.GRID,
        policy=policy,
        shards=shards,
        max_workers=max_workers,
        start_method=START_METHOD if policy == "processes" else None,
    )


class TestMaskAndStatsParity:
    """Bit-identical masks and exactly-merged stats, policy × shards."""

    PSI = 25.0

    @pytest.fixture(scope="class")
    def world(self):
        rng = np.random.default_rng(42)
        coords = rng.uniform(0, 2_000, (5_000, 2))
        probes = rng.uniform(0, 2_000, (4_000, 2))
        return coords, probes

    def test_masks_and_merged_stats_identical(self, world):
        coords, probes = world
        dense = StopSet(coords).covered_mask(probes, self.PSI)
        assert dense.any() and not dense.all()  # a discriminating probe
        ref_stats = QueryStats()
        with QueryRuntime(_config("serial", 1)) as rt:
            ref_mask = rt.probe_mask(coords, probes, self.PSI, ref_stats)
        np.testing.assert_array_equal(ref_mask, dense)
        for policy in POLICIES:
            for shards in SHARD_COUNTS:
                stats = QueryStats()
                with QueryRuntime(_config(policy, shards)) as rt:
                    mask = rt.probe_mask(coords, probes, self.PSI, stats)
                np.testing.assert_array_equal(
                    mask, dense, err_msg=f"{policy} x {shards} shards"
                )
                assert stats == ref_stats, f"{policy} x {shards} shards"

    def test_probe_mask_async_matches_sync(self, world, caplog):
        """The advertised async bridge: identical mask and identically
        mutated stats versus probe_mask, under every policy, and the
        probe kernel never holds the event loop (asserted via asyncio's
        debug-mode slow-callback warnings, as the service smoke test
        does)."""
        import asyncio
        import logging

        coords, probes = world
        for policy in POLICIES:
            with QueryRuntime(_config(policy, 2)) as rt:
                sync_stats = QueryStats()
                sync_mask = rt.probe_mask(
                    coords, probes, self.PSI, sync_stats
                )

                async def drive():
                    loop = asyncio.get_running_loop()
                    loop.set_debug(True)
                    loop.slow_callback_duration = 0.25
                    stats = QueryStats()
                    mask = await rt.probe_mask_async(
                        coords, probes, self.PSI, stats
                    )
                    return mask, stats

                with caplog.at_level(logging.WARNING, logger="asyncio"):
                    async_mask, async_stats = asyncio.run(drive())
            blocking = [
                r for r in caplog.records if "Executing" in r.getMessage()
            ]
            assert not blocking, (policy, [r.getMessage() for r in blocking])
            np.testing.assert_array_equal(
                async_mask, sync_mask, err_msg=policy
            )
            assert async_stats == sync_stats, policy

    def test_empty_and_degenerate_probes(self, world):
        coords, _ = world
        for policy in POLICIES:
            with QueryRuntime(_config(policy, 7)) as rt:
                empty = rt.probe_mask(
                    coords, np.zeros((0, 2)), self.PSI
                )
                assert empty.shape == (0,)
                one = rt.probe_mask(coords, coords[:1], self.PSI)
                assert bool(one[0])  # a stop covers itself


class TestQueryStackUnderPolicies:
    """Every query algorithm must be ``==`` under every policy."""

    def test_evaluate_topk_maxkcov_batch_identical(
        self, taxi_users, facilities
    ):
        tree = TQTree.build(taxi_users, TQTreeConfig(beta=16))
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=400.0)
        count_spec = ServiceSpec(ServiceModel.COUNT, psi=400.0)
        plain_eval = [
            evaluate_service(tree, f, spec) for f in facilities[:6]
        ]
        plain_topk = top_k_facilities(tree, facilities, 4, spec)
        plain_cov = maxkcov_tq(tree, facilities, 3, spec)
        requests = [(f, count_spec) for f in facilities[:6]]
        plain_batch = BatchQueryEngine(taxi_users).run(requests)
        for policy in POLICIES:
            with QueryRuntime(_config(policy, 3)) as rt:
                got_eval = [
                    evaluate_service(tree, f, spec, runtime=rt)
                    for f in facilities[:6]
                ]
                got_topk = top_k_facilities(
                    tree, facilities, 4, spec, runtime=rt
                )
                got_cov = maxkcov_tq(tree, facilities, 3, spec, runtime=rt)
                got_batch = BatchQueryEngine(taxi_users, runtime=rt).run(
                    requests
                )
            assert got_eval == plain_eval, policy
            assert got_topk.ranking == plain_topk.ranking, policy
            assert got_cov.facility_ids() == plain_cov.facility_ids(), policy
            assert got_cov.combined_service == plain_cov.combined_service
            assert got_batch.scores == plain_batch.scores, policy

    def test_batch_stats_merge_exactly_across_policies(self, taxi_users, facilities):
        """The runtime-accrued grand total is policy-invariant: sharded
        per-shard merges equal the unsharded totals for every policy."""
        spec = ServiceSpec(ServiceModel.COUNT, psi=400.0)
        requests = [(f, spec) for f in facilities[:6]]
        totals = []
        for policy in POLICIES:
            with QueryRuntime(_config(policy, 7)) as rt:
                result = BatchQueryEngine(taxi_users, runtime=rt).run(requests)
                assert rt.stats == result.stats
                totals.append(rt.stats)
        assert totals[0] == totals[1] == totals[2]


class TestPolicyConfig:
    def test_string_policy_coerces(self):
        assert RuntimeConfig(policy="processes").policy is (
            ExecutionPolicy.PROCESSES
        )
        assert RuntimeConfig(policy="serial").policy is ExecutionPolicy.SERIAL
        assert RuntimeConfig().policy is ExecutionPolicy.THREADS

    def test_unknown_policy_rejected(self):
        with pytest.raises(QueryError):
            RuntimeConfig(policy="fibers")

    def test_unknown_start_method_rejected(self):
        with pytest.raises(QueryError):
            RuntimeConfig(start_method="teleport")

    def test_factory_builds_matching_executor(self):
        assert isinstance(
            make_policy_executor(RuntimeConfig(policy="serial")),
            SerialPolicyExecutor,
        )
        assert isinstance(
            make_policy_executor(RuntimeConfig(policy="threads")),
            ThreadPolicyExecutor,
        )
        proc = make_policy_executor(
            RuntimeConfig(policy="processes", max_workers=2)
        )
        assert isinstance(proc, ProcessPolicyExecutor)
        proc.close()

    def test_legacy_shim_runtime_is_serial(self):
        with pytest.warns(DeprecationWarning):
            rt = coerce_runtime(None, ProximityBackend.GRID, None)
        assert rt.config.policy is ExecutionPolicy.SERIAL
        assert rt.executor is None

    def test_executor_shape_per_policy(self):
        with QueryRuntime(_config("serial", 2)) as rt:
            assert rt.executor is None
        with QueryRuntime(_config("threads", 2)) as rt:
            assert hasattr(rt.executor, "map")  # a real Executor
        with QueryRuntime(_config("processes", 2)) as rt:
            assert hasattr(rt.executor, "probe_shards")  # the fan-out
        # 0 workers keeps any policy serial
        with QueryRuntime(_config("processes", 2, max_workers=0)) as rt:
            assert rt.executor is None


class TestProcessPolicyLifecycle:
    def test_dressed_sets_survive_close(self):
        """A stop set dressed before close() must degrade to serial
        probing — identical answers, no scheduling on a dead pool."""
        rng = np.random.default_rng(5)
        coords = rng.uniform(0, 500, (256, 2))
        probe = rng.uniform(0, 500, (128, 2))
        rt = QueryRuntime(_config("processes", 4))
        dressed = rt.stop_set(StopSet(coords), 10.0)
        before = dressed.covered_mask(probe, 10.0)
        rt.close()
        after = dressed.covered_mask(probe, 10.0)  # must not raise
        np.testing.assert_array_equal(before, after)

    def test_close_unlinks_shared_memory(self):
        rng = np.random.default_rng(6)
        coords = rng.uniform(0, 2_000, (4_000, 2))
        probe = rng.uniform(0, 2_000, (512, 2))
        rt = QueryRuntime(_config("processes", 4))
        mask = rt.probe_mask(coords, probe, 25.0)
        assert mask.shape == (512,)
        executor = rt.policy_executor
        names = [
            desc[0]
            for _, _, descs in executor._exports.values()
            for desc in descs
        ]
        assert names, "the probe should have exported shard segments"
        rt.close()
        assert not executor._exports
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_export_cache_is_bounded(self):
        executor = ProcessPolicyExecutor(max_workers=2, max_exports=4)
        try:
            from repro.engine.shards import ShardedStopGrid

            rng = np.random.default_rng(7)
            grid = ShardedStopGrid(rng.uniform(0, 2_000, (4_000, 2)), 25.0, 7)
            for shard in grid.shards:
                if shard.n_stops:
                    executor._shard_descriptor(shard)
            assert len(executor._exports) <= 4
            # a cached shard re-serves its descriptor (no re-export)
            live = next(iter(executor._exports.values()))[0]
            before = len(executor._exports)
            executor._shard_descriptor(live)
            assert len(executor._exports) == before
        finally:
            executor.close()


class TestLegacyShimsCompleted:
    """PR-2 missed two ``backend=``/``cache=`` call sites; both warn now."""

    def test_batch_engine_backend_warns(self, taxi_users):
        with pytest.warns(DeprecationWarning):
            BatchQueryEngine(taxi_users, backend=ProximityBackend.GRID)

    def test_batch_engine_cache_warns(self, taxi_users):
        with pytest.warns(DeprecationWarning):
            BatchQueryEngine(taxi_users, cache=CoverageCache())

    def test_batch_engine_runtime_does_not_warn(self, taxi_users):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with QueryRuntime(_config("serial", 1)) as rt:
                BatchQueryEngine(taxi_users, runtime=rt)
            BatchQueryEngine(taxi_users)  # no legacy keywords: no warning

    def test_evaluate_node_trajectories_cache_warns(
        self, taxi_users, facilities
    ):
        tree = TQTree.build(taxi_users, TQTreeConfig(beta=16))
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=400.0)
        component = FacilityComponent.whole(facilities[0], spec.psi)
        plain = evaluate_node_trajectories(
            tree, tree.root, component, spec
        )
        cache = CoverageCache()
        with pytest.warns(DeprecationWarning):
            legacy = evaluate_node_trajectories(
                tree, tree.root, component, spec, cache=cache
            )
        assert legacy == plain
        assert len(cache) > 0  # the legacy cache object really was used

    def test_evaluate_node_trajectories_positional_cache_still_works(
        self, taxi_users, facilities
    ):
        """PR 2's signature had the bare cache in what is now the
        runtime slot; positional callers must land on the shim, not
        crash."""
        tree = TQTree.build(taxi_users, TQTreeConfig(beta=16))
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=400.0)
        component = FacilityComponent.whole(facilities[0], spec.psi)
        plain = evaluate_node_trajectories(tree, tree.root, component, spec)
        cache = CoverageCache()
        with pytest.warns(DeprecationWarning):
            legacy = evaluate_node_trajectories(
                tree, tree.root, component, spec, None, None, cache
            )
        assert legacy == plain
        assert len(cache) > 0

    def test_runtime_keyword_rejects_non_runtime(
        self, taxi_users, facilities
    ):
        tree = TQTree.build(taxi_users, TQTreeConfig(beta=16))
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=400.0)
        with pytest.raises(QueryError):
            evaluate_service(
                tree, facilities[0], spec, runtime=CoverageCache()
            )


class TestNoBackendPlumbingInQueries:
    """The layering check, now rule L1 of ``repro.lint``: no module
    under ``queries/`` touches the proximity machinery directly —
    probes go through the runtime or the plain ``StopSet`` contract.
    The declared layer DAG forbids ``queries`` → ``engine`` imports and
    bans the ``ProximityBackend`` symbol for the queries layer."""

    def test_queries_never_import_backend_or_engine(self):
        import repro.queries as queries_pkg
        from repro.lint import REPRO_CONFIG, SourceIndex, run_rules

        layer_cfg = REPRO_CONFIG.layer
        assert "engine" not in layer_cfg.allowed["queries"]
        assert "ProximityBackend" in layer_cfg.banned_names["queries"]

        root = Path(queries_pkg.__file__).parent.parent
        findings = run_rules(SourceIndex(root), REPRO_CONFIG, select=["L1"])
        offenders = [
            f.render() for f in findings if f.path.startswith("repro/queries/")
        ]
        assert not offenders, (
            "queries/ must route all proximity work through the runtime; "
            "found direct plumbing:\n" + "\n".join(offenders)
        )


class TestAutoPolicy:
    """The adaptive ``auto`` policy: serial for small probe blocks,
    thread fan-out for large ones — bit-identical to whichever policy
    it delegates to (ISSUE-4 satellite)."""

    PSI = 25.0

    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(91)
        stops = rng.uniform(0, 2_000, (6_000, 2))
        small = rng.uniform(0, 2_000, (64, 2))
        large = rng.uniform(0, 2_000, (AUTO_POLICY_MIN_POINTS + 512, 2))
        return stops, small, large

    def _masks(self, policy, stops, probe, shards=4):
        with QueryRuntime(_config(policy, shards)) as rt:
            stats = QueryStats()
            mask = rt.probe_mask(stops, probe, self.PSI, stats)
        return mask, stats

    @pytest.mark.parametrize("block", ["small", "large"])
    def test_auto_masks_and_stats_match_delegates(self, workload, block):
        stops, small, large = workload
        probe = small if block == "small" else large
        auto_mask, auto_stats = self._masks("auto", stops, probe)
        for delegate in ("serial", "threads"):
            mask, stats = self._masks(delegate, stops, probe)
            np.testing.assert_array_equal(auto_mask, mask)
            assert auto_stats == stats

    def test_heuristic_picks_serial_then_fanout(self, workload):
        stops, small, large = workload
        rt = QueryRuntime(_config("auto", 4))
        executor = rt.policy_executor
        assert isinstance(executor, AutoPolicyExecutor)
        try:
            rt.probe_mask(stops, small, self.PSI)
            assert executor.serial_probes >= 1
            assert executor.fanout_probes == 0
            assert not executor._threads._built  # pool never constructed
            rt.probe_mask(stops, large, self.PSI)
            assert executor.fanout_probes == 1
        finally:
            rt.close()

    def test_single_worker_auto_probes_inline(self, workload):
        stops, _, large = workload
        with QueryRuntime(_config("auto", 4, max_workers=1)) as rt:
            assert rt.executor is None  # nothing to fan out over
            serial_mask, _ = self._masks("serial", stops, large)
            np.testing.assert_array_equal(
                rt.probe_mask(stops, large, self.PSI), serial_mask
            )

    def test_closed_auto_degrades_to_serial(self, workload):
        stops, _, large = workload
        rt = QueryRuntime(_config("auto", 4))
        dressed = rt.stop_set(StopSet(stops), self.PSI)
        before = dressed.covered_mask(large, self.PSI)
        rt.close()
        after = dressed.covered_mask(large, self.PSI)  # must not raise
        np.testing.assert_array_equal(before, after)

    def test_auto_policy_accepted_by_config_string(self):
        config = RuntimeConfig(policy="auto")
        assert config.policy is ExecutionPolicy.AUTO
        assert isinstance(make_policy_executor(config), AutoPolicyExecutor)
