"""Oracle tests: every indexed evaluator must equal brute force.

This is the correctness gate for the whole reproduction: TQ(B), TQ(Z),
all three variants, all three service models, normalised and raw — each
compared against the index-free reference implementation on both fixture
data and hypothesis-generated adversarial data.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import (
    IndexVariant,
    QueryError,
    ServiceModel,
    ServiceSpec,
    TQTree,
    TQTreeConfig,
    brute_force_matches,
    brute_force_service,
    build_full,
    build_segmented,
    build_tq_basic,
    build_tq_zorder,
)
from repro.queries import MatchCollector, QueryStats, evaluate_service

from .strategies import WORLD, facility_sets, psis, trajectory_sets

ALL_SPECS = [
    ServiceSpec(ServiceModel.ENDPOINT, psi=400.0),
    ServiceSpec(ServiceModel.COUNT, psi=400.0, normalize=True),
    ServiceSpec(ServiceModel.COUNT, psi=400.0, normalize=False),
    ServiceSpec(ServiceModel.LENGTH, psi=400.0, normalize=True),
    ServiceSpec(ServiceModel.LENGTH, psi=400.0, normalize=False),
]


def _compatible(spec: ServiceSpec, variant: IndexVariant, users) -> bool:
    if spec.model is ServiceModel.ENDPOINT and variant is IndexVariant.SEGMENTED:
        return False
    if (
        spec.model is not ServiceModel.ENDPOINT
        and variant is IndexVariant.ENDPOINT
        and any(u.n_points > 2 for u in users)
    ):
        return False
    return True


class TestFixtureOracle:
    """Exhaustive comparison on the deterministic fixture city."""

    @pytest.mark.parametrize("use_zorder", [True, False], ids=["TQ(Z)", "TQ(B)"])
    def test_endpoint_data_all_specs(self, taxi_users, facilities, use_zorder):
        tree = TQTree.build(
            taxi_users, TQTreeConfig(beta=16, use_zorder=use_zorder)
        )
        for spec in ALL_SPECS:
            for f in facilities:
                expected = brute_force_service(taxi_users, f, spec)
                got = evaluate_service(tree, f, spec)
                assert got == pytest.approx(expected), (spec, f.facility_id)

    @pytest.mark.parametrize("use_zorder", [True, False], ids=["S-TQ(Z)", "S-TQ(B)"])
    def test_segmented_multipoint(self, checkin_users, facilities, use_zorder):
        tree = build_segmented(checkin_users, beta=16, use_zorder=use_zorder)
        for spec in ALL_SPECS:
            if spec.model is ServiceModel.ENDPOINT:
                continue
            for f in facilities:
                expected = brute_force_service(checkin_users, f, spec)
                got = evaluate_service(tree, f, spec)
                assert got == pytest.approx(expected), (spec, f.facility_id)

    @pytest.mark.parametrize("use_zorder", [True, False], ids=["F-TQ(Z)", "F-TQ(B)"])
    def test_full_multipoint(self, checkin_users, facilities, use_zorder):
        tree = build_full(checkin_users, beta=16, use_zorder=use_zorder)
        for spec in ALL_SPECS:
            for f in facilities:
                expected = brute_force_service(checkin_users, f, spec)
                got = evaluate_service(tree, f, spec)
                assert got == pytest.approx(expected), (spec, f.facility_id)

    def test_match_collection_equals_brute_force(self, taxi_users, facilities):
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=400.0)
        for builder in (build_tq_zorder, build_tq_basic):
            tree = builder(taxi_users, beta=16)
            for f in facilities:
                collector = MatchCollector()
                evaluate_service(tree, f, spec, collector=collector)
                assert collector.as_dict() == brute_force_matches(
                    taxi_users, f, spec.psi
                )

    def test_match_collection_multipoint(self, checkin_users, facilities):
        spec = ServiceSpec(ServiceModel.COUNT, psi=400.0)
        for builder in (build_segmented, build_full):
            tree = builder(checkin_users, beta=16)
            for f in facilities:
                collector = MatchCollector()
                evaluate_service(tree, f, spec, collector=collector)
                assert collector.as_dict() == brute_force_matches(
                    checkin_users, f, spec.psi
                )


class TestEdgeCases:
    def test_facility_outside_space(self, taxi_users):
        from repro import FacilityRoute

        tree = build_tq_zorder(taxi_users, beta=16)
        far = FacilityRoute(0, [(10**6, 10**6)])
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=100.0)
        assert evaluate_service(tree, far, spec) == 0.0

    def test_psi_zero(self, taxi_users, facilities):
        tree = build_tq_zorder(taxi_users, beta=16)
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=0.0)
        for f in facilities[:3]:
            assert evaluate_service(tree, f, spec) == pytest.approx(
                brute_force_service(taxi_users, f, spec)
            )

    def test_huge_psi_serves_everyone(self, taxi_users, facilities):
        tree = build_tq_zorder(taxi_users, beta=16)
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=10**6)
        assert evaluate_service(tree, facilities[0], spec) == len(taxi_users)

    def test_incompatible_spec_rejected(self, checkin_users):
        tree = build_tq_zorder(
            checkin_users, beta=16, variant=IndexVariant.ENDPOINT
        )
        with pytest.raises(QueryError):
            evaluate_service(tree, None, ServiceSpec(ServiceModel.COUNT, psi=1.0))

    def test_stats_counters_populate(self, taxi_users, facilities):
        tree = build_tq_zorder(taxi_users, beta=16)
        stats = QueryStats()
        evaluate_service(
            tree, facilities[0], ServiceSpec(ServiceModel.ENDPOINT, psi=400.0),
            stats=stats,
        )
        assert stats.nodes_visited >= 1

    def test_zreduce_prunes_most_entries(self, taxi_users, facilities):
        """The pruning-effectiveness claim behind Figure 6: zReduce
        exact-checks only a small fraction of the entries stored in the
        visited nodes (TQ(B) must touch every one of them)."""
        spec = ServiceSpec(ServiceModel.ENDPOINT, psi=200.0)
        tree = build_tq_zorder(taxi_users, beta=16)
        stats = QueryStats()
        for f in facilities:
            evaluate_service(tree, f, spec, stats=stats)
        assert stats.entries_scored < stats.entries_considered
        assert stats.entries_scored <= 0.5 * stats.entries_considered


class TestPropertyOracle:
    """Hypothesis-driven adversarial comparison."""

    @settings(max_examples=30, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=20, min_points=2, max_points=2),
        facility_sets(min_size=1, max_size=3),
        psis(),
    )
    def test_endpoint_variant_random(self, users, facs, psi):
        for use_zorder in (True, False):
            tree = TQTree.build(
                users,
                TQTreeConfig(beta=3, use_zorder=use_zorder),
                space=WORLD,
            )
            for model in (ServiceModel.ENDPOINT, ServiceModel.COUNT, ServiceModel.LENGTH):
                spec = ServiceSpec(model, psi=psi, normalize=False)
                for f in facs:
                    assert evaluate_service(tree, f, spec) == pytest.approx(
                        brute_force_service(users, f, spec)
                    )

    @settings(max_examples=30, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=15, min_points=1, max_points=6),
        facility_sets(min_size=1, max_size=3),
        psis(),
    )
    def test_multipoint_variants_random(self, users, facs, psi):
        for variant in (IndexVariant.SEGMENTED, IndexVariant.FULL):
            for use_zorder in (True, False):
                tree = TQTree.build(
                    users,
                    TQTreeConfig(beta=3, variant=variant, use_zorder=use_zorder),
                    space=WORLD,
                )
                for spec in ALL_SPECS:
                    if not _compatible(spec, variant, users):
                        continue
                    spec = ServiceSpec(spec.model, psi=psi, normalize=spec.normalize)
                    for f in facs:
                        assert evaluate_service(tree, f, spec) == pytest.approx(
                            brute_force_service(users, f, spec)
                        ), (variant, spec)

    @settings(max_examples=25, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=12, min_points=2, max_points=5),
        facility_sets(min_size=1, max_size=2),
        psis(),
    )
    def test_match_collection_random(self, users, facs, psi):
        for variant in (IndexVariant.SEGMENTED, IndexVariant.FULL):
            tree = TQTree.build(
                users, TQTreeConfig(beta=3, variant=variant), space=WORLD
            )
            spec = ServiceSpec(ServiceModel.COUNT, psi=psi, normalize=False)
            for f in facs:
                collector = MatchCollector()
                evaluate_service(tree, f, spec, collector=collector)
                assert collector.as_dict() == brute_force_matches(users, f, psi)
