"""Tests for the BL baseline (point-quadtree range queries)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import (
    BaselineIndex,
    FacilityRoute,
    QueryError,
    ServiceModel,
    ServiceSpec,
    Trajectory,
    brute_force_matches,
    brute_force_service,
)

from .strategies import facility_sets, psis, trajectory_sets


class TestBaselineIndex:
    def test_build_counts_points(self, taxi_users):
        index = BaselineIndex.build(taxi_users)
        assert index.n_users == len(taxi_users)
        assert index.n_points == sum(u.n_points for u in taxi_users)

    def test_empty_users_rejected(self):
        with pytest.raises(QueryError):
            BaselineIndex.build([])

    def test_duplicate_ids_rejected(self):
        users = [Trajectory(1, [(0, 0), (1, 1)]), Trajectory(1, [(2, 2), (3, 3)])]
        with pytest.raises(QueryError):
            BaselineIndex.build(users)

    def test_negative_psi_rejected(self, taxi_users, facilities):
        index = BaselineIndex.build(taxi_users)
        with pytest.raises(QueryError):
            index.covered_indices(facilities[0], -1.0)

    def test_service_matches_oracle_all_models(self, taxi_users, facilities):
        index = BaselineIndex.build(taxi_users)
        for model in ServiceModel:
            for norm in (True, False):
                spec = ServiceSpec(model, psi=400.0, normalize=norm)
                for f in facilities:
                    assert index.service_value(f, spec) == pytest.approx(
                        brute_force_service(taxi_users, f, spec)
                    )

    def test_service_on_multipoint(self, checkin_users, facilities, count_spec):
        index = BaselineIndex.build(checkin_users)
        for f in facilities:
            assert index.service_value(f, count_spec) == pytest.approx(
                brute_force_service(checkin_users, f, count_spec)
            )

    def test_matches_equal_oracle(self, taxi_users, facilities):
        index = BaselineIndex.build(taxi_users)
        for f in facilities:
            assert index.matches(f, 400.0) == brute_force_matches(
                taxi_users, f, 400.0
            )

    def test_top_k_matches_sorting(self, taxi_users, facilities, endpoint_spec):
        index = BaselineIndex.build(taxi_users)
        result = index.top_k(facilities, 4, endpoint_spec)
        expected = sorted(
            (brute_force_service(taxi_users, f, endpoint_spec) for f in facilities),
            reverse=True,
        )[:4]
        assert list(result.services()) == pytest.approx(expected)

    def test_top_k_invalid_k(self, taxi_users, facilities, endpoint_spec):
        index = BaselineIndex.build(taxi_users)
        with pytest.raises(QueryError):
            index.top_k(facilities, 0, endpoint_spec)

    def test_facility_outside_space(self, taxi_users, endpoint_spec):
        index = BaselineIndex.build(taxi_users)
        far = FacilityRoute(9, [(10**7, 10**7)])
        assert index.service_value(far, endpoint_spec) == 0.0

    @settings(max_examples=25, deadline=None)
    @given(
        trajectory_sets(min_size=1, max_size=15, min_points=1, max_points=5),
        facility_sets(min_size=1, max_size=3),
        psis(),
    )
    def test_random_instances_match_oracle(self, users, facs, psi):
        index = BaselineIndex.build(users)
        for model in (ServiceModel.ENDPOINT, ServiceModel.COUNT, ServiceModel.LENGTH):
            spec = ServiceSpec(model, psi=psi, normalize=False)
            for f in facs:
                assert index.service_value(f, spec) == pytest.approx(
                    brute_force_service(users, f, spec)
                )
