"""Thread-safety of the shared-state layers under the service's
coalescing path (ISSUE-4 satellite).

The :class:`~repro.service.QueryService` executes request cores on a
bridge thread pool, so :class:`~repro.engine.CoverageCache` and
:class:`~repro.engine.ShardStore` — the two objects every request
shares through the runtime — are hammered from many threads at once.
Both now hold internal locks; these tests pin the invariants the locks
buy: consistent counters (hits + misses account for every call), no
lost or corrupted entries, single-build sharing in the store, and
bit-identical probe results when a sharded runtime is driven from many
threads concurrently.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import (
    CoverageCache,
    ProximityBackend,
    QueryRuntime,
    QueryStats,
    RuntimeConfig,
    ShardStore,
    StopSet,
)

N_THREADS = 8


def _run_threads(fn, n_threads=N_THREADS):
    """Run ``fn(thread_index)`` across threads, releasing them together
    to maximise interleaving; re-raises the first worker failure."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def body(i):
        barrier.wait()
        try:
            fn(i)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=body, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestCoverageCacheConcurrency:
    def test_node_table_hammering_keeps_counters_consistent(self):
        cache = CoverageCache()
        node = object()
        coords = np.zeros((4, 2))
        mask = np.ones(7, dtype=bool)
        rounds = 200

        def worker(i):
            for r in range(rounds):
                key = ("node", r % 16)
                hit = cache.lookup_node(key, node, coords)
                if hit is None:
                    cache.store_node(key, node, coords, [], mask)
                else:
                    candidates, got = hit
                    assert candidates == []
                    assert got is mask

        _run_threads(worker)
        # every lookup either hit or was followed by a store (counted as
        # the miss); nothing was lost to a racing increment
        assert cache.hits + cache.misses == N_THREADS * rounds
        assert len(cache._nodes) == 16

    def test_cached_match_fn_concurrent_calls_are_consistent(self):
        cache = CoverageCache()
        calls = []
        lock = threading.Lock()

        class Facility:
            def __init__(self, facility_id):
                self.facility_id = facility_id

        facilities = [Facility(i) for i in range(4)]

        def match_fn(facility):
            with lock:
                calls.append(facility.facility_id)
            return {facility.facility_id: (0, 1)}

        fn = cache.cached_match_fn(match_fn)
        results = [None] * N_THREADS

        def worker(i):
            out = [fn(f) for f in facilities for _ in range(50)]
            results[i] = out

        _run_threads(worker)
        expected = [{f.facility_id: (0, 1)} for f in facilities for _ in range(50)]
        for out in results:
            assert out == expected
        # concurrent first-misses may each compute, but the counters
        # must account for exactly one outcome per call
        total_calls = N_THREADS * 4 * 50
        assert cache.hits + cache.misses == total_calls
        assert cache.misses == len(calls)

    def test_mask_table_and_clear_under_threads(self):
        cache = CoverageCache()
        owner = object()
        block = np.zeros((5, 2))
        mask = np.ones(5, dtype=bool)

        def worker(i):
            for r in range(100):
                got = cache.lookup_mask(owner, 1.0, block)
                if got is None:
                    cache.store_mask(owner, 1.0, block, mask)
                else:
                    assert got is mask
                if i == 0 and r % 25 == 0:
                    cache.clear()
                len(cache)  # must never crash mid-clear

        _run_threads(worker)


class TestShardStoreConcurrency:
    PSI = 10.0

    def test_identical_content_builds_once_and_shares(self):
        store = ShardStore()
        rng = np.random.default_rng(5)
        coords = rng.uniform(0, 500, (2_000, 2))
        grids = [None] * N_THREADS

        def worker(i):
            # a fresh copy per thread: sharing must come from content,
            # not object identity
            grids[i] = store.sharded_grid(coords.copy(), self.PSI, 4)

        _run_threads(worker)
        first = grids[0]
        assert all(g is first for g in grids)
        assert store.grid_misses == 1  # single build under the lock
        assert store.grid_hits == N_THREADS - 1

    def test_distinct_content_interleaved_stays_sound(self):
        store = ShardStore()
        rng = np.random.default_rng(6)
        pools = [rng.uniform(0, 500, (800, 2)) for _ in range(4)]
        probe = rng.uniform(0, 500, (256, 2))
        expected = {
            i: StopSet(pool).covered_mask(probe, self.PSI)
            for i, pool in enumerate(pools)
        }

        def worker(i):
            for r in range(12):
                idx = (i + r) % len(pools)
                grid = store.sharded_grid(pools[idx].copy(), self.PSI, 3)
                np.testing.assert_array_equal(
                    grid.covered_mask(probe, self.PSI), expected[idx]
                )

        _run_threads(worker)
        assert store.grid_misses == len(pools)
        assert store.grid_hits == N_THREADS * 12 - len(pools)

    def test_interning_counters_account_for_every_call(self):
        store = ShardStore()
        keys = np.arange(64, dtype=np.int64)
        coords = np.random.default_rng(7).uniform(0, 10, (64, 2))

        def worker(i):
            for _ in range(100):
                shard = store.intern_shard(keys, coords)
                assert shard.n_stops == 64

        _run_threads(worker)
        assert store.shard_hits + store.shard_misses == N_THREADS * 100
        assert store.shard_misses == 1


class TestRuntimeConcurrentProbes:
    """A sharded runtime driven from many threads at once — the shape
    of the service's bridge pool — must stay bit-identical to serial."""

    PSI = 20.0

    @pytest.mark.parametrize("policy", ["serial", "threads", "auto"])
    def test_concurrent_probe_mask_bit_identical(self, policy):
        rng = np.random.default_rng(8)
        stop_pools = [rng.uniform(0, 1_000, (3_000, 2)) for _ in range(3)]
        probes = [rng.uniform(0, 1_000, (600, 2)) for _ in range(3)]
        expected = [
            StopSet(stops).covered_mask(probe, self.PSI)
            for stops in stop_pools
            for probe in probes
        ]
        config = RuntimeConfig(
            backend=ProximityBackend.GRID, policy=policy, shards=4,
            max_workers=2,
        )
        with QueryRuntime(config) as rt:
            def task(pair):
                si, pi = pair
                stats = QueryStats()
                mask = rt.probe_mask(
                    StopSet(stop_pools[si].copy()), probes[pi], self.PSI, stats
                )
                return si * len(probes) + pi, mask

            pairs = [(s, p) for s in range(3) for p in range(3)] * 4
            with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
                for idx, mask in pool.map(task, pairs):
                    np.testing.assert_array_equal(mask, expected[idx])
